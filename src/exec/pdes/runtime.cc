#include "exec/pdes/runtime.h"

#include <algorithm>
#include <cassert>
#include <thread>
#include <utility>

namespace cbt::exec::pdes {

namespace {

/// Per-node RNG streams: splitmix-style stride on the simulation seed.
constexpr std::uint64_t kSeedStride = 0x9e3779b97f4a7c15ULL;

/// Region trace rings only buffer the emissions of a single event before
/// they are drained into the side log, so a small ring suffices.
constexpr std::size_t kRegionRingCapacity = 4096;

/// Runs `fn` at scope exit; used for the phase teardown flags that must
/// fire even when a simulation event throws.
template <typename Fn>
struct ScopeExit {
  Fn fn;
  ~ScopeExit() { fn(); }
};
template <typename Fn>
ScopeExit(Fn) -> ScopeExit<Fn>;

}  // namespace

thread_local Runtime::ThreadContext Runtime::tls_;

Runtime::Runtime(netsim::Simulator& sim, int shards, int threads)
    : sim_(sim),
      requested_(std::clamp(shards, 1, 64)),
      threads_(threads) {}

Runtime::~Runtime() {
  if (installed_ && sim_.shard_backend() == this) {
    sim_.InstallShardBackend(nullptr);
  }
  if (tls_.runtime == this) tls_ = ThreadContext{};
}

void Runtime::Install() {
  assert(!installed_);
  part_ = MakePartition(sim_, requested_);
  seed_base_ = sim_.seed();
  base_trace_ = sim_.base_trace();

  const std::size_t subnet_count = sim_.subnet_count();
  regions_.clear();
  regions_.reserve(static_cast<std::size_t>(part_.regions));
  for (int r = 0; r < part_.regions; ++r) {
    auto region = std::make_unique<Region>();
    if (base_trace_ != nullptr) {
      region->ring = std::make_unique<obs::TraceBuffer>(kRegionRingCapacity,
                                                        base_trace_->level());
    }
    region->cut_delta.assign(subnet_count, netsim::SubnetCounters{});
    region->cut_dirty.assign(subnet_count, false);
    regions_.push_back(std::move(region));
  }
  EnsureNodeTables();

  if (threads_ <= 0) {
    worker_count_ = std::min(part_.regions, Pool::HardwareConcurrency());
  } else {
    worker_count_ = std::min(threads_, part_.regions);
  }
  worker_count_ = std::max(worker_count_, 1);
  if (worker_count_ > 1) {
    pool_ = std::make_unique<Pool>(worker_count_);
  }

  sim_.InstallShardBackend(this);
  installed_ = true;
}

int Runtime::EffectiveRegion() const {
  const std::int32_t a = CurrentAffinity();
  if (a >= 0) {
    assert(static_cast<std::size_t>(a) < part_.region_of_node.size());
    return part_.region_of_node[static_cast<std::size_t>(a)];
  }
  return CurrentRegion();
}

int Runtime::RegionOfNode(std::int32_t node) {
  assert(node >= 0);
  if (static_cast<std::size_t>(node) >= part_.region_of_node.size()) {
    EnsureNodeTables();
  }
  assert(static_cast<std::size_t>(node) < part_.region_of_node.size());
  return part_.region_of_node[static_cast<std::size_t>(node)];
}

void Runtime::EnsureNodeTables() {
  // Nodes only appear while the regions are quiesced (topology
  // construction, coordinator events), so resizing here never races a
  // region thread reading the tables; the next window barrier publishes.
  assert(CurrentRegion() < 0);
  const std::size_t n = sim_.node_count();
  if (part_.region_of_node.size() < n) ExtendPartition(part_, sim_);
  if (node_seq_.size() < n) node_seq_.resize(n, 0);
  if (node_rng_.size() < n) node_rng_.resize(n);
}

std::uint64_t Runtime::NextSeq(std::int32_t src) {
  if (src < 0) return coord_seq_++;
  if (static_cast<std::size_t>(src) >= node_seq_.size()) EnsureNodeTables();
  assert(static_cast<std::size_t>(src) < node_seq_.size());
  return node_seq_[static_cast<std::size_t>(src)]++;
}

// --- ShardBackend: execution context ------------------------------------

SimTime Runtime::Now() const {
  const int r = CurrentRegion();
  if (r >= 0) return regions_[static_cast<std::size_t>(r)]->clock;
  return now_;
}

Rng& Runtime::ContextRng() {
  const std::int32_t a = CurrentAffinity();
  if (a < 0) return sim_.base_rng();
  assert(static_cast<std::size_t>(a) < node_rng_.size());
  std::unique_ptr<Rng>& slot = node_rng_[static_cast<std::size_t>(a)];
  if (slot == nullptr) {
    slot = std::make_unique<Rng>(seed_base_ +
                                 kSeedStride *
                                     static_cast<std::uint64_t>(a + 1));
  }
  return *slot;
}

obs::TraceBuffer* Runtime::ContextTrace() {
  const int r = CurrentRegion();
  if (r >= 0) return regions_[static_cast<std::size_t>(r)]->ring.get();
  return base_trace_;
}

netsim::PacketArena& Runtime::ContextArena() {
  const int r = EffectiveRegion();
  if (r < 0) return sim_.mutable_packet_arena();
  return regions_[static_cast<std::size_t>(r)]->arena;
}

netsim::SubnetCounters& Runtime::CountersFor(netsim::SubnetRecord& subnet) {
  const int r = EffectiveRegion();
  const std::size_t sid = static_cast<std::size_t>(subnet.id.value());
  // Coordinator context, post-partition subnets, and non-cut subnets
  // (whose attachments all live in one region) write the real row; only
  // cut subnets need per-region deltas to keep concurrent windows apart.
  if (r < 0 || sid >= part_.subnet_cut.size() || !part_.subnet_cut[sid]) {
    return subnet.counters;
  }
  Region& region = *regions_[static_cast<std::size_t>(r)];
  if (!region.cut_dirty[sid]) {
    region.cut_dirty[sid] = true;
    region.dirty_subnets.push_back(static_cast<std::int32_t>(sid));
  }
  return region.cut_delta[sid];
}

std::int32_t Runtime::ExchangeAffinity(std::int32_t node) {
  if (tls_.runtime != this) {
    // Claim the thread slot; stale context from a previous runtime on
    // this thread is dead by definition (one backend per simulator).
    tls_ = ThreadContext{this, -1, -1};
  }
  if (node >= 0 &&
      static_cast<std::size_t>(node) >= part_.region_of_node.size()) {
    EnsureNodeTables();
  }
  const std::int32_t prev = tls_.affinity;
  tls_.affinity = node;
  return prev;
}

// --- ShardBackend: scheduling -------------------------------------------

netsim::EventId Runtime::EncodeId(int region, RegionQueue::Handle h) const {
  assert(h.slot < (1u << 24));
  return (1ULL << 63) |
         (static_cast<std::uint64_t>(static_cast<unsigned>(region) & 0x7Fu)
          << 56) |
         (static_cast<std::uint64_t>(h.gen) << 24) |
         static_cast<std::uint64_t>(h.slot);
}

netsim::EventId Runtime::Schedule(SimTime when, netsim::EventFn fn) {
  const std::int32_t a = CurrentAffinity();
  const EventKey key{when, a, NextSeq(a)};
  if (a < 0) {
    return EncodeId(kCoordRegionCode,
                    coord_queue_.Schedule(key, -1, std::move(fn)));
  }
  const int r = RegionOfNode(a);
  return EncodeId(
      r, regions_[static_cast<std::size_t>(r)]->queue.Schedule(
             key, a, std::move(fn)));
}

bool Runtime::Cancel(netsim::EventId id) {
  if ((id & (1ULL << 63)) == 0) return false;  // not one of ours
  const int region = static_cast<int>((id >> 56) & 0x7Fu);
  RegionQueue::Handle h;
  h.gen = static_cast<std::uint32_t>((id >> 24) & 0xFFFFFFFFULL);
  h.slot = static_cast<std::uint32_t>(id & 0xFFFFFFu);
  if (region == kCoordRegionCode) return coord_queue_.Cancel(h);
  if (region >= part_.regions) return false;
  return regions_[static_cast<std::size_t>(region)]->queue.Cancel(h);
}

void Runtime::ScheduleDelivery(SimTime when, NodeId receiver, VifIndex vif,
                               Ipv4Address link_src, Ipv4Address link_dst,
                               const netsim::PacketRef& payload) {
  const std::int32_t a = CurrentAffinity();
  const EventKey key{when, a, NextSeq(a)};
  const int dest = RegionOfNode(receiver.value());
  const int sender_region = a >= 0 ? RegionOfNode(a) : -1;
  if (sender_region == dest) {
    // Intra-region: the packet ref stays on the region arena.
    regions_[static_cast<std::size_t>(dest)]->queue.Schedule(
        key, receiver.value(),
        [this, receiver, vif, link_src, link_dst, payload] {
          sim_.InjectDelivery(receiver, vif, link_src, link_dst,
                              payload.bytes());
        });
    return;
  }
  // Boundary (or coordinator-originated) delivery: copy the bytes out of
  // the sender's arena and enqueue on the destination inbox. The key
  // travels along, so the destination heap orders the delivery exactly
  // where any other region count would.
  const std::span<const std::uint8_t> bytes = payload.bytes();
  BoundaryMessage msg;
  msg.key = key;
  msg.receiver = receiver;
  msg.vif = vif;
  msg.link_src = link_src;
  msg.link_dst = link_dst;
  msg.bytes.assign(bytes.begin(), bytes.end());
  Region& dr = *regions_[static_cast<std::size_t>(dest)];
  std::lock_guard<std::mutex> lock(dr.inbox_mu);
  dr.inbox.push_back(std::move(msg));
}

// --- Window engine ------------------------------------------------------

void Runtime::RunUntil(SimTime until) {
  assert(CurrentRegion() < 0);
  EnsureNodeTables();

  const bool coord_work =
      !coord_queue_.Empty() && coord_queue_.FrontKey().when <= until;
  const bool region_work = MinRegionTime() <= until;
  if (!coord_work && !region_work && InboxesEmpty()) {
    now_ = std::max(now_, until);  // idle span: just commit the clock
    return;
  }

  if (worker_count_ > 1) {
    phase_base_gen_ = window_gen_.load(std::memory_order_relaxed);
    phase_over_.store(false, std::memory_order_relaxed);
    threaded_phase_ = true;
    ScopeExit phase_reset{[this] { threaded_phase_ = false; }};
    // coord_mu_ inside RunWith publishes phase_base_gen_/phase_over_ to
    // the workers before any of them starts spinning.
    pool_->RunWith(
        static_cast<std::size_t>(worker_count_),
        [this](std::size_t w) { WorkerPhase(w); },
        [this, until] {
          // phase_over_ must flip before control leaves this callable —
          // including via exception — or the workers spin forever and
          // RunWith never drains.
          ScopeExit over{[this] {
            phase_over_.store(true, std::memory_order_release);
          }};
          CoordinatorBody(until);
        });
  } else {
    CoordinatorBody(until);
  }
  now_ = std::max(now_, until);
}

void Runtime::CoordinatorBody(SimTime until) {
  for (;;) {
    DrainInboxes();
    SimTime t_c = kNoEvent;
    if (!coord_queue_.Empty()) t_c = coord_queue_.FrontKey().when;
    if (t_c <= until) {
      // Coordinator events at t_c run after every region event strictly
      // before t_c and before region events at t_c (src -1 sorts first).
      AdvanceRegions(t_c - 1);
      FlushCutDeltas();
      now_ = std::max(now_, t_c);
      RunCoordinatorEventsAt(t_c);
    } else {
      AdvanceRegions(until);
      FlushCutDeltas();
      return;
    }
  }
}

void Runtime::AdvanceRegions(SimTime bound) {
  for (;;) {
    DrainInboxes();
    const SimTime b = MinRegionTime();
    if (b > bound) return;  // covers kNoEvent
    SimTime end = bound;
    if (part_.lookahead < kNoEvent - b) {
      end = std::min(end, b + part_.lookahead - 1);
    }
    end = std::min(end, b + (kMaxWindowWidth - 1));
    RunWindow(end);
  }
}

void Runtime::RunWindow(SimTime end) {
  if (threaded_phase_) {
    // The coordinator touched queues/arenas since the last window
    // (front peeks, inbox drains); hand the guards over before waking
    // the workers, and back again once they are done.
    ReleaseRegionGuards();
    window_end_ = end;
    window_done_.store(0, std::memory_order_relaxed);
    window_gen_.fetch_add(1, std::memory_order_release);
    while (window_done_.load(std::memory_order_acquire) < worker_count_) {
      std::this_thread::yield();
    }
    ReleaseRegionGuards();
  } else {
    for (int r = 0; r < part_.regions; ++r) ExecuteRegionWindow(r, end);
  }
  MergeRegionTraces();
}

void Runtime::WorkerPhase(std::size_t worker) {
  const ThreadContext saved = tls_;
  std::uint64_t seen = phase_base_gen_;
  for (;;) {
    std::uint64_t g = window_gen_.load(std::memory_order_acquire);
    while (g == seen && !phase_over_.load(std::memory_order_acquire)) {
      std::this_thread::yield();
      g = window_gen_.load(std::memory_order_acquire);
    }
    // A pending window is processed even if phase-over was raised while
    // we were slow to notice it (phase-over is only set after the last
    // barrier completes, so this branch is belt-and-braces).
    if (g == seen) break;
    seen = g;
    for (int r = static_cast<int>(worker); r < part_.regions;
         r += worker_count_) {
      ExecuteRegionWindow(r, window_end_);
    }
    window_done_.fetch_add(1, std::memory_order_release);
  }
  tls_ = saved;
}

void Runtime::ExecuteRegionWindow(int region_index, SimTime end) {
  Region& region = *regions_[static_cast<std::size_t>(region_index)];
  const ThreadContext saved = tls_;
  tls_ = ThreadContext{this, region_index, -1};
  while (!region.queue.Empty() && region.queue.FrontKey().when <= end) {
    EventKey key;
    std::int32_t affinity = -1;
    netsim::EventFn fn = region.queue.PopFront(&key, &affinity);
    region.clock = key.when;
    tls_.affinity = affinity;
    fn();
    fn.Reset();
    ++region.executed;
    if (region.ring != nullptr && region.ring->size() > 0) {
      // Attribute every emission to the event that produced it; the
      // barrier merge re-establishes the global key order.
      region.ring->ForEach([&](std::uint64_t, const obs::TraceEvent& e) {
        region.trace_log.push_back(TraceEntry{key, e});
      });
      region.ring->Clear();
    }
  }
  region.clock = end;
  tls_ = saved;
}

void Runtime::RunCoordinatorEventsAt(SimTime when) {
  const ThreadContext saved = tls_;
  tls_ = ThreadContext{this, -1, -1};
  while (!coord_queue_.Empty() && coord_queue_.FrontKey().when == when) {
    EventKey key;
    std::int32_t affinity = -1;
    netsim::EventFn fn = coord_queue_.PopFront(&key, &affinity);
    tls_.affinity = affinity;  // always -1: see Schedule
    fn();
    fn.Reset();
    ++coord_executed_;
  }
  tls_ = saved;
}

void Runtime::DrainInboxes() {
  for (auto& rp : regions_) {
    Region& region = *rp;
    std::vector<BoundaryMessage> batch;
    {
      std::lock_guard<std::mutex> lock(region.inbox_mu);
      batch.swap(region.inbox);
    }
    // Arrival order on the inbox is racy across senders; the region heap
    // re-sorts by the carried partition-invariant key, so it is moot.
    for (BoundaryMessage& m : batch) {
      const EventKey key = m.key;
      const std::int32_t affinity = m.receiver.value();
      region.queue.Schedule(key, affinity, [this, msg = std::move(m)] {
        sim_.InjectDelivery(msg.receiver, msg.vif, msg.link_src,
                            msg.link_dst, msg.bytes);
      });
    }
  }
}

void Runtime::MergeRegionTraces() {
  if (base_trace_ == nullptr) return;
  // K-way merge of the region side logs by event key. Keys are unique
  // across regions (a scheduling context lives in exactly one region)
  // and one event's multiple emissions share its key *consecutively*
  // within one region, so consuming each run of equal keys wholesale
  // preserves emission order.
  for (;;) {
    Region* best = nullptr;
    for (auto& rp : regions_) {
      if (rp->trace_cursor >= rp->trace_log.size()) continue;
      if (best == nullptr ||
          rp->trace_log[rp->trace_cursor].key <
              best->trace_log[best->trace_cursor].key) {
        best = rp.get();
      }
    }
    if (best == nullptr) break;
    const EventKey key = best->trace_log[best->trace_cursor].key;
    while (best->trace_cursor < best->trace_log.size() &&
           best->trace_log[best->trace_cursor].key == key) {
      base_trace_->Emit(best->trace_log[best->trace_cursor].event);
      ++best->trace_cursor;
    }
  }
  for (auto& rp : regions_) {
    rp->trace_log.clear();
    rp->trace_cursor = 0;
  }
}

void Runtime::FlushCutDeltas() {
  for (auto& rp : regions_) {
    Region& region = *rp;
    for (const std::int32_t sid : region.dirty_subnets) {
      netsim::SubnetCounters& delta =
          region.cut_delta[static_cast<std::size_t>(sid)];
      netsim::SubnetCounters& total = sim_.subnet(SubnetId(sid)).counters;
      total.frames_sent += delta.frames_sent;
      total.bytes_sent += delta.bytes_sent;
      total.frames_dropped += delta.frames_dropped;
      total.frames_duplicated += delta.frames_duplicated;
      total.frames_reordered += delta.frames_reordered;
      total.frames_corrupted += delta.frames_corrupted;
      delta = netsim::SubnetCounters{};
      region.cut_dirty[static_cast<std::size_t>(sid)] = false;
    }
    region.dirty_subnets.clear();
  }
}

void Runtime::ReleaseRegionGuards() {
  for (auto& rp : regions_) {
    rp->queue.ReleaseOwnership();
    rp->arena.ReleaseOwnership();
  }
}

SimTime Runtime::MinRegionTime() {
  SimTime best = kNoEvent;
  for (auto& rp : regions_) {
    if (rp->queue.Empty()) continue;
    best = std::min(best, rp->queue.FrontKey().when);
  }
  return best;
}

bool Runtime::InboxesEmpty() {
  for (auto& rp : regions_) {
    std::lock_guard<std::mutex> lock(rp->inbox_mu);
    if (!rp->inbox.empty()) return false;
  }
  return true;
}

std::uint64_t Runtime::TotalExecuted() const {
  std::uint64_t total = coord_executed_;
  for (const auto& rp : regions_) total += rp->executed;
  return total;
}

void Runtime::RunUntilIdle(std::size_t max_events) {
  assert(CurrentRegion() < 0);
  EnsureNodeTables();
  // Always inline: idle-drain is a test/teardown path, not a hot one,
  // and the stop-after-max-events contract wants a serial count.
  const std::uint64_t start = TotalExecuted();
  while (TotalExecuted() - start < max_events) {
    DrainInboxes();
    SimTime t_c = kNoEvent;
    if (!coord_queue_.Empty()) t_c = coord_queue_.FrontKey().when;
    const SimTime b = MinRegionTime();
    if (t_c == kNoEvent && b == kNoEvent) {
      if (InboxesEmpty()) break;
      continue;  // boundary messages still pending
    }
    if (t_c <= b) {
      FlushCutDeltas();
      now_ = std::max(now_, t_c);
      RunCoordinatorEventsAt(t_c);
      continue;
    }
    SimTime end = b;
    if (part_.lookahead < kNoEvent - b) {
      end = b + part_.lookahead - 1;
    }
    end = std::min(end, b + (kMaxWindowWidth - 1));
    if (t_c != kNoEvent) end = std::min(end, t_c - 1);
    for (int r = 0; r < part_.regions; ++r) ExecuteRegionWindow(r, end);
    MergeRegionTraces();
    now_ = std::max(now_, end);
  }
  FlushCutDeltas();
}

}  // namespace cbt::exec::pdes
