// Per-region event queue for space-parallel PDES.
//
// Events are ordered by a *partition-invariant* key (when, src, seq):
// `src` is the scheduling context that created the event (a node id, or
// -1 for the coordinator — code running outside any event, e.g. the
// bench driver) and `seq` is that context's monotone schedule counter.
// Each context schedules the same events in the same order no matter how
// the topology is partitioned, so sorting by this key yields one global
// order shared by every region count — the heart of the "--shards N is
// byte-identical to --shards 1" guarantee. The coordinator's src = -1
// sorts ahead of every node, so a coordinator event at time t runs
// before region events at t, at any shard count.
//
// The queue itself is a slab of EventFn slots (generation-counted, so
// cancellation invalidates lazily but destroys the closure eagerly) plus
// a binary min-heap of keys. Like EventQueue it is single-owner: a debug
// ThreadOwnershipGuard aborts on cross-thread touches, and the runtime
// releases/reacquires ownership at window barriers when a queue moves
// between the coordinator and a pool worker.
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/thread_guard.h"
#include "common/types.h"
#include "netsim/event_fn.h"

namespace cbt::exec::pdes {

struct EventKey {
  SimTime when = 0;
  std::int32_t src = -1;  // scheduling context: node id, -1 = coordinator
  std::uint64_t seq = 0;  // per-context monotone schedule counter

  friend bool operator<(const EventKey& a, const EventKey& b) {
    if (a.when != b.when) return a.when < b.when;
    if (a.src != b.src) return a.src < b.src;
    return a.seq < b.seq;
  }
  friend bool operator==(const EventKey& a, const EventKey& b) {
    return a.when == b.when && a.src == b.src && a.seq == b.seq;
  }
};

class RegionQueue {
 public:
  /// Cancellation handle; `gen` detects stale handles after slot reuse.
  struct Handle {
    std::uint32_t slot = 0;
    std::uint32_t gen = 0;
  };

  RegionQueue() = default;
  RegionQueue(const RegionQueue&) = delete;
  RegionQueue& operator=(const RegionQueue&) = delete;

  /// `affinity` is the execution-context node the event runs on behalf
  /// of (delivery receiver / timer owner), -1 for none.
  Handle Schedule(const EventKey& key, std::int32_t affinity,
                  netsim::EventFn fn) {
    guard_.AssertOwned(kGuardName);
    std::uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    Slot& s = slots_[slot];
    s.fn = std::move(fn);
    s.affinity = affinity;
    s.live = true;
    heap_.push_back(HeapEntry{key, slot, s.gen});
    SiftUp(heap_.size() - 1);
    ++live_;
    return Handle{slot, s.gen};
  }

  /// Cancels a pending event; destroys the closure eagerly, leaves the
  /// heap entry to be pruned lazily. Returns false for stale handles.
  bool Cancel(Handle h) {
    guard_.AssertOwned(kGuardName);
    if (h.slot >= slots_.size()) return false;
    Slot& s = slots_[h.slot];
    if (!s.live || s.gen != h.gen) return false;
    FreeSlot(h.slot);
    --live_;
    return true;
  }

  bool Empty() const {
    guard_.AssertOwned(kGuardName);
    return live_ == 0;
  }
  std::size_t size() const {
    guard_.AssertOwned(kGuardName);
    return live_;
  }

  /// Key of the earliest pending event; only valid when !Empty().
  const EventKey& FrontKey() {
    guard_.AssertOwned(kGuardName);
    Prune();
    assert(!heap_.empty());
    return heap_.front().key;
  }

  /// Pops the earliest event; only valid when !Empty().
  netsim::EventFn PopFront(EventKey* key, std::int32_t* affinity) {
    guard_.AssertOwned(kGuardName);
    Prune();
    assert(!heap_.empty());
    const HeapEntry top = heap_.front();
    PopHeap();
    Slot& s = slots_[top.slot];
    *key = top.key;
    *affinity = s.affinity;
    netsim::EventFn fn = std::move(s.fn);
    FreeSlot(top.slot);
    --live_;
    return fn;
  }

  /// See ThreadOwnershipGuard::ReleaseOwnership — barrier handoff.
  void ReleaseOwnership() { guard_.ReleaseOwnership(); }

 private:
  static constexpr const char* kGuardName = "exec::pdes::RegionQueue";

  struct Slot {
    netsim::EventFn fn;
    std::uint32_t gen = 0;
    std::int32_t affinity = -1;
    bool live = false;
  };
  struct HeapEntry {
    EventKey key;
    std::uint32_t slot;
    std::uint32_t gen;
  };

  void FreeSlot(std::uint32_t slot) {
    Slot& s = slots_[slot];
    s.fn.Reset();
    s.live = false;
    ++s.gen;  // invalidates the heap entry and any outstanding handle
    free_.push_back(slot);
  }

  /// Drops cancelled entries off the heap front.
  void Prune() {
    while (!heap_.empty()) {
      const HeapEntry& top = heap_.front();
      const Slot& s = slots_[top.slot];
      if (s.live && s.gen == top.gen) return;
      PopHeap();
    }
  }

  void PopHeap() {
    heap_.front() = heap_.back();
    heap_.pop_back();
    SiftDown(0);
  }

  void SiftUp(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!(heap_[i].key < heap_[parent].key)) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void SiftDown(std::size_t i) {
    const std::size_t n = heap_.size();
    while (true) {
      std::size_t best = i;
      const std::size_t l = 2 * i + 1;
      const std::size_t r = 2 * i + 2;
      if (l < n && heap_[l].key < heap_[best].key) best = l;
      if (r < n && heap_[r].key < heap_[best].key) best = r;
      if (best == i) return;
      std::swap(heap_[i], heap_[best]);
      i = best;
    }
  }

  ThreadOwnershipGuard guard_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
  std::vector<HeapEntry> heap_;
  std::size_t live_ = 0;
};

}  // namespace cbt::exec::pdes
