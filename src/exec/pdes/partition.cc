#include "exec/pdes/partition.h"

#include <algorithm>
#include <cassert>
#include <deque>

namespace cbt::exec::pdes {
namespace {

/// Path-halving union-find over node indices.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = static_cast<int>(i);
  }

  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(int a, int b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    // Always attach the larger root to the smaller: the root is then the
    // lowest member id, which the BFS uses as the group's sort key.
    if (b < a) std::swap(a, b);
    parent_[b] = a;
  }

 private:
  std::vector<int> parent_;
};

}  // namespace

Partition MakePartition(const netsim::Simulator& sim, int requested_regions) {
  const int node_count = static_cast<int>(sim.node_count());
  const int subnet_count = static_cast<int>(sim.subnet_count());

  Partition part;
  part.region_of_node.assign(static_cast<std::size_t>(node_count), 0);
  part.owner_of_subnet.assign(static_cast<std::size_t>(subnet_count), 0);
  part.subnet_cut.assign(static_cast<std::size_t>(subnet_count), false);
  if (node_count == 0) {
    part.regions = 1;
    return part;
  }

  // 1. Contract zero-delay subnets so every potential cut has delay > 0.
  UnionFind uf(static_cast<std::size_t>(node_count));
  for (int s = 0; s < subnet_count; ++s) {
    const netsim::SubnetRecord& rec = sim.subnet(SubnetId(s));
    if (rec.delay > 0 || rec.attachments.size() < 2) continue;
    const int first = rec.attachments.front().first.value();
    for (const auto& [node, vif] : rec.attachments) uf.Union(first, node.value());
  }

  // 2. Enumerate supernodes (groups) in order of their lowest member id.
  std::vector<int> group_of_node(static_cast<std::size_t>(node_count));
  std::vector<std::vector<int>> group_members;  // node ids, ascending
  {
    std::vector<int> group_of_root(static_cast<std::size_t>(node_count), -1);
    for (int n = 0; n < node_count; ++n) {
      const int root = uf.Find(n);
      if (group_of_root[root] < 0) {
        group_of_root[root] = static_cast<int>(group_members.size());
        group_members.emplace_back();
      }
      group_of_node[n] = group_of_root[root];
      group_members[group_of_root[root]].push_back(n);
    }
  }
  const int group_count = static_cast<int>(group_members.size());

  // 3. Group adjacency from shared subnets (sorted + deduped per group).
  std::vector<std::vector<int>> adjacency(static_cast<std::size_t>(group_count));
  for (int s = 0; s < subnet_count; ++s) {
    const netsim::SubnetRecord& rec = sim.subnet(SubnetId(s));
    for (const auto& [a, vif_a] : rec.attachments) {
      for (const auto& [b, vif_b] : rec.attachments) {
        const int ga = group_of_node[a.value()];
        const int gb = group_of_node[b.value()];
        if (ga != gb) adjacency[ga].push_back(gb);
      }
    }
  }
  for (auto& neighbors : adjacency) {
    std::sort(neighbors.begin(), neighbors.end());
    neighbors.erase(std::unique(neighbors.begin(), neighbors.end()),
                    neighbors.end());
  }

  // 4. Grow regions by BFS over groups, ceil(nodes / regions) nodes each;
  // the final region absorbs everything left (including any disconnected
  // components the frontier never reached).
  const int region_target = std::max(1, std::min(requested_regions, group_count));
  const int size_target = (node_count + region_target - 1) / region_target;
  std::vector<int> region_of_group(static_cast<std::size_t>(group_count), -1);
  int next_seed = 0;  // lowest-first-member unassigned group
  int used_regions = 0;
  for (int r = 0; r < region_target; ++r) {
    while (next_seed < group_count && region_of_group[next_seed] >= 0) {
      ++next_seed;
    }
    if (next_seed >= group_count) break;
    used_regions = r + 1;
    const bool last = r == region_target - 1;
    int size = 0;
    std::deque<int> frontier;
    int reseed = next_seed;
    while (last || size < size_target) {
      int g = -1;
      while (!frontier.empty()) {
        if (region_of_group[frontier.front()] < 0) {
          g = frontier.front();
          frontier.pop_front();
          break;
        }
        frontier.pop_front();
      }
      if (g < 0) {
        // Frontier exhausted: restart from the lowest unassigned group
        // (a disconnected component, or the very first seed).
        while (reseed < group_count && region_of_group[reseed] >= 0) ++reseed;
        if (reseed >= group_count) break;
        g = reseed;
      }
      region_of_group[g] = r;
      size += static_cast<int>(group_members[g].size());
      for (const int neighbor : adjacency[g]) {
        if (region_of_group[neighbor] < 0) frontier.push_back(neighbor);
      }
    }
  }
  part.regions = std::max(1, used_regions);

  for (int n = 0; n < node_count; ++n) {
    part.region_of_node[n] = region_of_group[group_of_node[n]];
  }

  // 5. Subnet ownership, cut set, lookahead.
  for (int s = 0; s < subnet_count; ++s) {
    const netsim::SubnetRecord& rec = sim.subnet(SubnetId(s));
    if (rec.attachments.empty()) continue;
    const int owner = part.region_of_node[rec.attachments.front().first.value()];
    part.owner_of_subnet[s] = owner;
    for (const auto& [node, vif] : rec.attachments) {
      if (part.region_of_node[node.value()] != owner) {
        part.subnet_cut[s] = true;
        break;
      }
    }
    if (part.subnet_cut[s]) {
      // Zero-delay subnets were contracted, so every cut has delay > 0.
      assert(rec.delay > 0);
      part.lookahead = std::min(part.lookahead, rec.delay);
    }
  }
  return part;
}

void ExtendPartition(Partition& part, const netsim::Simulator& sim) {
  const std::size_t node_count = sim.node_count();
  for (std::size_t n = part.region_of_node.size(); n < node_count; ++n) {
    const netsim::NodeRecord& rec = sim.node(NodeId(static_cast<int>(n)));
    int region = 0;
    if (!rec.interfaces.empty()) {
      const int subnet = rec.interfaces.front().subnet.value();
      if (subnet >= 0 &&
          subnet < static_cast<int>(part.owner_of_subnet.size())) {
        region = part.owner_of_subnet[subnet];
      }
    }
    part.region_of_node.push_back(region);
  }
}

}  // namespace cbt::exec::pdes
