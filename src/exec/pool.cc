#include "exec/pool.h"

#if defined(__linux__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace cbt::exec {

int Pool::HardwareConcurrency() {
  // std::thread::hardware_concurrency may report 0 (unknown) or, in a
  // container, the cgroup/affinity clamp of the current thread — a bench
  // forced to --jobs 1 then records hardware_concurrency=1 on a 64-core
  // host, making its speedup trajectories unreadable. Cross-check the
  // online-CPU count the OS reports and take the larger.
  unsigned n = std::thread::hardware_concurrency();
#if defined(_SC_NPROCESSORS_ONLN)
  const long online = ::sysconf(_SC_NPROCESSORS_ONLN);
  if (online > 0 && static_cast<unsigned>(online) > n) {
    n = static_cast<unsigned>(online);
  }
#endif
  return n == 0 ? 1 : static_cast<int>(n);
}

Pool::Pool(int threads)
    : thread_count_(threads <= 0 ? HardwareConcurrency() : threads) {
  if (thread_count_ == 1) return;  // inline pool: no threads, no queues
  queues_.reserve(static_cast<std::size_t>(thread_count_));
  for (int i = 0; i < thread_count_; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(static_cast<std::size_t>(thread_count_));
  for (int i = 0; i < thread_count_; ++i) {
    workers_.emplace_back(
        [this, i] { WorkerMain(static_cast<std::size_t>(i)); });
  }
}

Pool::~Pool() {
  {
    std::lock_guard<std::mutex> lock(coord_mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void Pool::Run(std::size_t task_count,
               const std::function<void(std::size_t)>& task) {
  if (thread_count_ == 1 || task_count <= 1) {
    // The exact legacy serial path: caller's thread, index order, no
    // cross-thread synchronization anywhere.
    for (std::size_t i = 0; i < task_count; ++i) task(i);
    return;
  }

  // Seed the worker deques round-robin. Workers are guaranteed idle here
  // (Run waits for busy_workers_ == 0 before returning), and the
  // coord_mu_ release below publishes the deque contents to them.
  for (std::size_t i = 0; i < task_count; ++i) {
    queues_[i % queues_.size()]->tasks.push_back(i);
  }

  std::unique_lock<std::mutex> lock(coord_mu_);
  task_ = &task;
  first_error_ = nullptr;
  busy_workers_ = static_cast<int>(workers_.size());
  ++epoch_;
  wake_cv_.notify_all();
  done_cv_.wait(lock, [this] { return busy_workers_ == 0; });
  task_ = nullptr;
  if (first_error_ != nullptr) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(error);
  }
}

void Pool::RunWith(std::size_t task_count,
                   const std::function<void(std::size_t)>& task,
                   const std::function<void()>& caller_task) {
  if (thread_count_ == 1 || task_count == 0) {
    for (std::size_t i = 0; i < task_count; ++i) task(i);
    caller_task();
    return;
  }

  for (std::size_t i = 0; i < task_count; ++i) {
    queues_[i % queues_.size()]->tasks.push_back(i);
  }

  std::unique_lock<std::mutex> lock(coord_mu_);
  task_ = &task;
  first_error_ = nullptr;
  busy_workers_ = static_cast<int>(workers_.size());
  ++epoch_;
  wake_cv_.notify_all();
  lock.unlock();

  // The caller's work runs concurrently with the workers. It is the
  // caller's contract that by the time caller_task returns, every
  // task(i) can run to completion (otherwise this deadlocks below).
  caller_task();

  lock.lock();
  done_cv_.wait(lock, [this] { return busy_workers_ == 0; });
  task_ = nullptr;
  if (first_error_ != nullptr) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(error);
  }
}

void Pool::WorkerMain(std::size_t self) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(std::size_t)>* task = nullptr;
    {
      std::unique_lock<std::mutex> lock(coord_mu_);
      wake_cv_.wait(lock,
                    [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
      task = task_;
    }
    std::size_t index;
    while (NextTask(self, index)) RunTask(*task, index);
    {
      std::lock_guard<std::mutex> lock(coord_mu_);
      if (--busy_workers_ == 0) done_cv_.notify_all();
    }
  }
}

bool Pool::NextTask(std::size_t self, std::size_t& index) {
  WorkerQueue& own = *queues_[self];
  {
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      index = own.tasks.front();
      own.tasks.pop_front();
      return true;
    }
  }
  for (std::size_t offset = 1; offset < queues_.size(); ++offset) {
    WorkerQueue& victim = *queues_[(self + offset) % queues_.size()];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.tasks.empty()) {
      index = victim.tasks.back();  // steal from the cold end
      victim.tasks.pop_back();
      return true;
    }
  }
  return false;
}

void Pool::RunTask(const std::function<void(std::size_t)>& task,
                   std::size_t index) {
  try {
    task(index);
  } catch (...) {
    std::lock_guard<std::mutex> lock(coord_mu_);
    if (first_error_ == nullptr) first_error_ = std::current_exception();
  }
}

}  // namespace cbt::exec
