#include "exec/run_context.h"

namespace cbt::exec {

RunContext::RunContext() {
  // Inherit the verbosity the launching thread runs at, but capture the
  // lines privately in the stderr-compatible format, so a parallel sweep
  // emits exactly the bytes (in exactly the order) a serial one would.
  log.level = Logger::level();
  log.sink = [this](LogLevel level, const std::string& message) {
    log_out << '[' << LogLevelName(level) << "] " << message << '\n';
  };
}

}  // namespace cbt::exec
