// Per-replica isolation of everything that used to be process-global.
//
// One RunContext is the *whole world* a simulation replica may mutate
// outside its own Simulator/domain objects:
//
//   * logging      — a private LogConfig (level + sink). The default sink
//                    buffers formatted lines into `log_out`, so replicas
//                    can neither interleave stderr lines nor observe each
//                    other's SetLevel calls;
//   * stdout       — replicas write human output to `out`, never to
//                    std::cout; the ordered reducer flushes the buffers
//                    in replica order, which is what makes `--jobs N`
//                    byte-identical to `--jobs 1`;
//   * tracing      — an optional private obs::TraceBuffer ring installed
//                    as the thread's ProcessTraceBuffer() override (even
//                    a null one: an untraced replica must not record
//                    into a traced bench's process buffer);
//   * metrics      — a private obs::Registry for the replica's bindings;
//   * RNG seeding  — the replica's seed, assigned by the sweep.
//
// Everything else a replica touches must be shared-immutable. The
// debug-build ThreadOwnershipGuard on PacketArena/EventQueue enforces
// the other direction: per-replica structures never leak across threads.
//
// ScopedRunContext installs the thread-local bindings for the duration
// of the replica's execution on whatever worker thread it landed on.
#pragma once

#include <cstdint>
#include <memory>
#include <sstream>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cbt::exec {

struct RunContext {
  RunContext();

  RunContext(const RunContext&) = delete;
  RunContext& operator=(const RunContext&) = delete;

  /// Position in the sweep; fixes the reduction (and output) order.
  std::size_t index = 0;
  /// The replica's RNG seed (chaos plans, workload generators...).
  std::uint64_t seed = 0;

  /// Private logging config. Constructed with the creating thread's
  /// current level and a sink that buffers into `log_out`.
  LogConfig log;
  /// Replica stdout — flushed to std::cout in replica order.
  std::ostringstream out;
  /// Replica log/stderr capture — flushed to std::cerr in replica order.
  std::ostringstream log_out;

  /// Private trace ring (null = tracing off for this replica).
  std::unique_ptr<obs::TraceBuffer> trace;
  /// Private metrics registry (never shared across replicas).
  obs::Registry metrics;
};

/// Installs `ctx`'s logging config and trace buffer as the calling
/// thread's current ones; restores the previous bindings on destruction.
/// The sweep wraps every job invocation in one of these.
class ScopedRunContext {
 public:
  explicit ScopedRunContext(RunContext& ctx)
      : previous_log_(Logger::InstallThreadConfig(&ctx.log)),
        trace_scope_(ctx.trace.get()) {}

  ~ScopedRunContext() { Logger::InstallThreadConfig(previous_log_); }

  ScopedRunContext(const ScopedRunContext&) = delete;
  ScopedRunContext& operator=(const ScopedRunContext&) = delete;

 private:
  LogConfig* previous_log_;
  obs::ScopedThreadTraceBuffer trace_scope_;
};

}  // namespace cbt::exec
