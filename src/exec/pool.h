// Work-stealing thread pool for independent simulation replicas.
//
// Granularity model: tasks are *whole replicas* — seconds of simulated
// protocol time each — so the pool optimizes for correctness and clean
// shutdown, not nanosecond dispatch. Each worker owns a deque seeded
// round-robin at Run() time; a worker pops its own deque from the front
// and, when empty, steals from the back of a victim's deque (classic
// work-stealing shape, with a per-deque mutex instead of a lock-free
// Chase-Lev deque — at replica granularity the lock is immeasurable and
// the implementation is trivially ThreadSanitizer-clean).
//
// Determinism: the pool never reorders *results* — tasks get their index
// and write into caller-owned per-index slots; the ordered reduction
// lives in sweep.h. A pool with thread_count() == 1 executes Run()
// inline on the calling thread in index order with no worker threads at
// all: the exact legacy serial path (--jobs 1).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace cbt::exec {

class Pool {
 public:
  /// `threads` = worker count; 0 picks HardwareConcurrency(). A pool of
  /// 1 spawns no threads and runs tasks inline on the caller.
  explicit Pool(int threads = 0);
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  int thread_count() const { return thread_count_; }

  /// Runs task(i) for every i in [0, task_count) and blocks until all
  /// complete. Tasks must be independent (they run concurrently on a
  /// pool of > 1 thread). If any task throws, the first exception (in
  /// completion order) is rethrown here after every task has finished.
  /// Not reentrant: one Run() at a time per pool.
  void Run(std::size_t task_count, const std::function<void(std::size_t)>& task);

  /// Like Run, but the *calling thread* executes `caller_task()`
  /// concurrently with the workers instead of just blocking — the shard
  /// runtime uses this to run its window coordinator alongside the
  /// region executors. `caller_task` must not return until every
  /// `task(i)` can finish (the PDES coordinator signals phase-over
  /// before returning); on a pool of 1 the tasks run inline first, then
  /// `caller_task` (which must cope with the tasks being already done).
  void RunWith(std::size_t task_count,
               const std::function<void(std::size_t)>& task,
               const std::function<void()>& caller_task);

  /// std::thread::hardware_concurrency with a floor of 1.
  static int HardwareConcurrency();

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::size_t> tasks;
  };

  void WorkerMain(std::size_t self);
  /// Pops own queue front, else steals a victim's back. False when every
  /// queue is empty.
  bool NextTask(std::size_t self, std::size_t& index);
  void RunTask(const std::function<void(std::size_t)>& task,
               std::size_t index);

  const int thread_count_;
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  // Epoch coordination: Run() loads the queues, bumps epoch_, and waits
  // for every worker to report back idle with the queues drained.
  std::mutex coord_mu_;
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  std::uint64_t epoch_ = 0;
  int busy_workers_ = 0;
  bool stop_ = false;
  const std::function<void(std::size_t)>* task_ = nullptr;
  std::exception_ptr first_error_;
};

}  // namespace cbt::exec
