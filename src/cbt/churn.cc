#include "cbt/churn.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace cbt::scenario {

ZipfSampler::ZipfSampler(std::uint32_t n, double s) {
  assert(n > 0);
  cdf_.reserve(n);
  double total = 0;
  for (std::uint32_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_.push_back(total);
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding shortfall
}

std::uint32_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint32_t>(it - cdf_.begin());
}

namespace {

/// Exponential draw with the given mean, via inverse transform. The
/// 1 - u argument keeps log() off zero (NextDouble is in [0, 1)).
SimDuration DrawExponential(Rng& rng, SimDuration mean) {
  const double u = rng.NextDouble();
  const double d = -static_cast<double>(mean) * std::log(1.0 - u);
  return static_cast<SimDuration>(d);
}

struct MemberRecord {
  SimTime join_at = 0;
  SimTime leave_at = 0;
  std::uint32_t lan = 0;
  std::uint32_t group = 0;
};

}  // namespace

ChurnSchedule ChurnSchedule::Generate(const ChurnParams& params,
                                      std::uint32_t lan_count,
                                      std::uint64_t seed) {
  assert(lan_count > 0);
  assert(params.groups > 0);
  Rng rng(seed);
  const ZipfSampler zipf(params.groups, params.zipf_s);

  std::vector<MemberRecord> records;
  records.reserve(params.initial_members +
                  static_cast<std::size_t>(params.arrivals_per_second *
                                           (static_cast<double>(params.duration) /
                                            kSecond)) +
                  16);

  const auto draw_member = [&](SimTime join_at) {
    MemberRecord r;
    r.join_at = join_at;
    r.leave_at = join_at + std::max<SimDuration>(
                               0, DrawExponential(rng, params.mean_holding));
    r.group = zipf.Sample(rng);
    r.lan = static_cast<std::uint32_t>(rng.NextBelow(lan_count));
    records.push_back(r);
  };

  // Warm start: members present at t = 0. Memorylessness makes the
  // residual holding time another exponential draw.
  for (std::uint64_t i = 0; i < params.initial_members; ++i) draw_member(0);

  // Poisson arrival process: exponential inter-arrival gaps.
  if (params.arrivals_per_second > 0) {
    const auto mean_gap = static_cast<SimDuration>(
        static_cast<double>(kSecond) / params.arrivals_per_second);
    SimTime t = DrawExponential(rng, mean_gap);
    while (t < params.duration) {
      draw_member(t);
      t += std::max<SimDuration>(1, DrawExponential(rng, mean_gap));
    }
  }

  // Flash crowds: a burst of joins into one group over a short window.
  for (const FlashCrowd& flash : params.flashes) {
    for (std::uint64_t i = 0; i < flash.members; ++i) {
      MemberRecord r;
      r.join_at = flash.at + static_cast<SimDuration>(rng.NextBelow(
                                 static_cast<std::uint64_t>(flash.window) + 1));
      r.leave_at = r.join_at + std::max<SimDuration>(
                                   0, DrawExponential(rng, params.mean_holding));
      r.group = flash.group % params.groups;
      r.lan = static_cast<std::uint32_t>(rng.NextBelow(lan_count));
      records.push_back(r);
    }
  }

  // Leave storms rewrite the departure times of members active at the
  // storm instant. Scan order (record index) keeps selection
  // deterministic.
  for (const LeaveStorm& storm : params.storms) {
    const std::uint32_t group = storm.group % params.groups;
    for (MemberRecord& r : records) {
      if (r.group != group) continue;
      if (r.join_at > storm.at || r.leave_at <= storm.at) continue;
      if (!rng.NextBool(storm.fraction)) continue;
      r.leave_at = storm.at + static_cast<SimDuration>(rng.NextBelow(
                                  static_cast<std::uint64_t>(storm.window) + 1));
    }
  }

  // Expand records into the event list. Join events sort before leave
  // events at equal times so per-(lan, group) member counts never go
  // negative (a record's leave can coincide with its own join).
  ChurnSchedule schedule;
  schedule.events_.reserve(records.size() * 2);
  for (const MemberRecord& r : records) {
    schedule.events_.push_back({r.join_at, r.lan, r.group, true});
    ++schedule.join_count_;
    if (r.leave_at < params.duration) {
      schedule.events_.push_back({r.leave_at, r.lan, r.group, false});
      ++schedule.leave_count_;
    }
  }
  std::stable_sort(schedule.events_.begin(), schedule.events_.end(),
                   [](const MembershipEvent& a, const MembershipEvent& b) {
                     if (a.at != b.at) return a.at < b.at;
                     return a.join && !b.join;
                   });

  std::uint64_t live = 0;
  for (const MembershipEvent& e : schedule.events_) {
    live += e.join ? 1 : 0;
    live -= e.join ? 0 : 1;
    schedule.peak_members_ = std::max(schedule.peak_members_, live);
  }
  return schedule;
}

void ChurnRunner::Arm() {
  if (next_ >= events_->size()) return;
  sim_->ScheduleAt((*events_)[next_].at, [this] { Pump(); });
}

void ChurnRunner::Pump() {
  const SimTime now = sim_->Now();
  while (next_ < events_->size() && (*events_)[next_].at <= now) {
    apply_((*events_)[next_]);
    ++next_;
  }
  Arm();
}

}  // namespace cbt::scenario
