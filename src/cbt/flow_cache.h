// Data-plane flow cache: memoized forwarding decisions per router.
//
// ForwardAlongTree's decision — which vifs get a native multicast, which
// neighbours get a CBT-mode encapsulation, which member LANs get a local
// delivery — depends only on (group, arrival vif, arrival source,
// arrival mode) plus slowly-changing control state (FIB entry, IGMP
// membership, DR/G-DR role, tunnel modes). The cache stores the resolved
// decision keyed by the fast-varying tuple and validates it against
// generation counters of the slow state:
//
//   * Fib::table_generation()  — bumped by entry Create/Remove; paired
//     with FibEntry::generation this is alias-free across teardown and
//     re-install of the same group;
//   * FibEntry::generation     — bumped by every forwarding-relevant
//     entry mutation (parent re-point, child edits, core list);
//   * a combined router epoch  — the sum of monotonic counters covering
//     IGMP membership/querier state, tunnel-mode configuration and the
//     router's own DR/proxy/crash state. Sums of monotonic counters are
//     monotonic, so a matching epoch proves none of the inputs moved.
//
// A mismatch on any of the three is a miss; correctness never depends on
// anyone calling an explicit flush. CbtRouter::FlowCacheCoherent() is the
// debug oracle: it recomputes every would-be-hit slot from scratch and
// compares, catching state mutated behind the generation counters.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/small_vec.h"
#include "common/types.h"

namespace cbt::core {

/// The fast-varying half of a forwarding decision's inputs.
struct FlowKey {
  Ipv4Address group;
  VifIndex arrival_vif = kInvalidVif;
  /// Link-level source of the arriving packet: decides the "don't echo
  /// back to the neighbour it came from" exclusions (parent and child
  /// skip checks).
  Ipv4Address arrival_src;
  /// Native vs CBT-mode arrival: changes the arrival-vif exclusions and
  /// the member-LAN TTL handling.
  bool cbt_arrival = false;

  bool operator==(const FlowKey&) const = default;
};

/// One pre-resolved encapsulated output.
struct FlowCbtTarget {
  VifIndex vif = kInvalidVif;
  /// Outer IP source (the vif's own address, resolved at build time —
  /// interface addresses are immutable in the simulator).
  Ipv4Address src;
  /// Outer IP destination: the sole child/parent, or the group address
  /// for a multi-child CBT multicast.
  Ipv4Address dst;

  bool operator==(const FlowCbtTarget&) const = default;
};

/// A resolved forwarding decision. Everything here is arrival-invariant
/// given the key; the only residual per-packet check the executor keeps
/// is "does this member LAN contain the packet's origin" (origin varies
/// per packet, not per flow).
struct FlowDecision {
  /// Tree vifs (parent and/or child) in native mode: one IP multicast
  /// each, in the slow path's emission order.
  SmallVec<VifIndex, 8> native_vifs;
  /// CBT-mode outputs (per-neighbour unicast or per-vif multicast).
  SmallVec<FlowCbtTarget, 8> cbt_targets;
  /// Member LANs this router delivers onto (IsSubnetDr and the
  /// arrival/native-overlap dedup already applied at build time).
  SmallVec<VifIndex, 8> member_vifs;

  bool operator==(const FlowDecision&) const = default;
};

struct FlowSlot {
  FlowKey key;
  std::uint64_t table_generation = 0;
  std::uint64_t entry_generation = 0;
  std::uint64_t epoch = 0;
  bool valid = false;
  FlowDecision decision;
};

/// Set-associative, lazily allocated per-router cache. Sixteen sets of
/// four ways cover the working set of a router on a handful of trees; a
/// core router interleaving many concurrent streams keeps up to four
/// flows per set resident (round-robin victim), so strict A,B,A,B
/// arrival alternation never degenerates into thrash the way a
/// direct-mapped slot would. A genuine overflow just costs a rebuild
/// (counted as a miss), never correctness.
class FlowCache {
 public:
  static constexpr std::size_t kSets = 16;
  static constexpr std::size_t kWays = 4;
  static constexpr std::size_t kSlots = kSets * kWays;

  /// Returns the way holding `key` if it is resident, otherwise the
  /// victim way the caller should rebuild into. The caller tells the
  /// cases apart exactly as before: `slot.valid && slot.key == key`.
  FlowSlot& SlotFor(const FlowKey& key) {
    if (slots_ == nullptr) slots_ = std::make_unique<Storage>();
    const std::size_t set = IndexOf(key);
    FlowSlot* ways = slots_->slots.data() + set * kWays;
    for (std::size_t w = 0; w < kWays; ++w) {
      if (ways[w].valid && ways[w].key == key) return ways[w];
    }
    for (std::size_t w = 0; w < kWays; ++w) {
      if (!ways[w].valid) return ways[w];
    }
    // Every way is live with some other flow: rotate the victim so
    // alternating flows spread across the set instead of evicting each
    // other out of one slot.
    std::uint8_t& cursor = slots_->cursor[set];
    FlowSlot& victim = ways[cursor];
    cursor = static_cast<std::uint8_t>((cursor + 1) % kWays);
    return victim;
  }

  /// Drops every cached decision (crash/restart wipes the data plane).
  void Clear() {
    if (slots_ == nullptr) return;
    for (FlowSlot& slot : slots_->slots) slot.valid = false;
  }

  /// Live (valid) slots — the occupancy gauge.
  std::size_t Occupancy() const {
    if (slots_ == nullptr) return 0;
    std::size_t n = 0;
    for (const FlowSlot& slot : slots_->slots) n += slot.valid ? 1 : 0;
    return n;
  }

  /// Visits every valid slot (the coherence oracle iterates these).
  template <typename Fn>
  void ForEachValidSlot(Fn&& fn) const {
    if (slots_ == nullptr) return;
    for (const FlowSlot& slot : slots_->slots) {
      if (slot.valid) fn(slot);
    }
  }

 private:
  struct Storage {
    std::array<FlowSlot, kSlots> slots;
    std::array<std::uint8_t, kSets> cursor{};
  };

  static std::size_t IndexOf(const FlowKey& key) {
    // FNV-1a over EVERY key field: flows that share (group, vif) but
    // differ in source or arrival mode are distinct concurrent streams,
    // and hashing them apart spreads them across sets.
    std::uint64_t h = 1469598103934665603ull;
    h = (h ^ key.group.bits()) * 1099511628211ull;
    h = (h ^ static_cast<std::uint64_t>(key.arrival_vif)) * 1099511628211ull;
    h = (h ^ key.arrival_src.bits()) * 1099511628211ull;
    h = (h ^ static_cast<std::uint64_t>(key.cbt_arrival)) * 1099511628211ull;
    // Top bits feed back so nearby addresses don't land in lockstep.
    h ^= h >> 33;
    return static_cast<std::size_t>(h & (kSets - 1));
  }

  std::unique_ptr<Storage> slots_;  // routers off the data path pay nothing
};

}  // namespace cbt::core
