#include "cbt/domain.h"

#include <cassert>

namespace cbt::core {

CbtDomain::CbtDomain(netsim::Simulator& sim, netsim::Topology& topo,
                     CbtConfig config, igmp::IgmpConfig igmp_config)
    : sim_(&sim),
      topo_(&topo),
      routes_(sim),
      config_(config),
      igmp_config_(igmp_config) {
  for (const NodeId id : topo.routers) {
    auto router = std::make_unique<CbtRouter>(sim, id, routes_, directory_,
                                              config_, igmp_config_);
    sim.SetAgent(id, router.get());
    routers_[id] = std::move(router);
    router_ids_.push_back(id);
  }
  for (const NodeId id : topo.hosts) {
    auto host = std::make_unique<HostAgent>(sim, id, &directory_);
    sim.SetAgent(id, host.get());
    hosts_[id] = std::move(host);
    host_ids_.push_back(id);
  }
}

CbtRouter& CbtDomain::router(NodeId id) {
  const auto it = routers_.find(id);
  assert(it != routers_.end());
  return *it->second;
}

CbtRouter& CbtDomain::router(const std::string& name) {
  return router(topo_->node(name));
}

HostAgent& CbtDomain::host(NodeId id) {
  const auto it = hosts_.find(id);
  assert(it != hosts_.end());
  return *it->second;
}

HostAgent& CbtDomain::host(const std::string& name) {
  return host(topo_->node(name));
}

HostAgent& CbtDomain::AddHost(SubnetId lan, const std::string& name) {
  const NodeId id = netsim::AttachHost(*sim_, *topo_, lan, name);
  auto host = std::make_unique<HostAgent>(*sim_, id, &directory_);
  sim_->SetAgent(id, host.get());
  HostAgent& ref = *host;
  hosts_[id] = std::move(host);
  host_ids_.push_back(id);
  return ref;
}

igmp::MembershipAggregate& CbtDomain::AddAggregate(
    SubnetId lan, const std::string& name,
    igmp::MembershipAggregate::Mode mode) {
  const NodeId id = netsim::AttachHost(*sim_, *topo_, lan, name);
  auto station = std::make_unique<igmp::MembershipAggregate>(
      *sim_, id, mode,
      [this](Ipv4Address group) { return directory_.CoresFor(group); },
      [this, lan](Ipv4Address group) {
        return directory_.AssignedIndex(group, lan);
      });
  sim_->SetAgent(id, station.get());
  igmp::MembershipAggregate& ref = *station;
  aggregates_[id] = std::move(station);
  aggregate_ids_.push_back(id);
  return ref;
}

igmp::MembershipAggregate& CbtDomain::aggregate(NodeId id) {
  const auto it = aggregates_.find(id);
  assert(it != aggregates_.end());
  return *it->second;
}

std::vector<Ipv4Address> CbtDomain::RegisterGroup(
    Ipv4Address group, const std::vector<NodeId>& cores) {
  std::vector<Ipv4Address> addresses;
  addresses.reserve(cores.size());
  for (const NodeId id : cores) addresses.push_back(sim_->PrimaryAddress(id));
  directory_.SetGroup(group, addresses);
  return addresses;
}

std::vector<Ipv4Address> CbtDomain::RegisterGroup(
    Ipv4Address group, const core_selection::Placement& placement,
    const std::vector<SubnetId>& member_lans) {
  std::vector<Ipv4Address> addresses = RegisterGroup(group, placement.cores);
  std::map<SubnetId, std::size_t> by_lan;
  const std::size_t n = std::min(member_lans.size(),
                                 placement.assignment.size());
  for (std::size_t i = 0; i < n; ++i) {
    by_lan[member_lans[i]] = placement.assignment[i];
  }
  directory_.SetAssignments(group, std::move(by_lan));
  return addresses;
}

void CbtDomain::ShardRoutes(int regions,
                            const std::function<int(NodeId)>& region_of) {
  assert(regions >= 1);
  shard_routes_.clear();
  shard_routes_.reserve(static_cast<std::size_t>(regions));
  for (int r = 0; r < regions; ++r) {
    auto manager =
        std::make_unique<routing::RouteManager>(*sim_, routes_.mode());
    manager->set_lpm_mode(routes_.lpm_mode());
    shard_routes_.push_back(std::move(manager));
  }
  for (const auto& [id, router] : routers_) {
    const int r = region_of(id);
    assert(r >= 0 && r < regions);
    router->set_routes(shard_routes_[static_cast<std::size_t>(r)].get());
  }
}

void CbtDomain::CrashRouter(NodeId id) {
  sim_->SetNodeUp(id, false);
  router(id).Crash();
}

void CbtDomain::RestartRouter(NodeId id) {
  sim_->SetNodeUp(id, true);
  router(id).Restart();
}

netsim::ChaosInjector::Hooks CbtDomain::ChaosHooks() {
  netsim::ChaosInjector::Hooks hooks;
  // The injector flips the node's up flag itself; these hooks only handle
  // the agent's protocol state.
  hooks.on_crash = [this](NodeId id) {
    if (routers_.contains(id)) router(id).Crash();
  };
  hooks.on_restart = [this](NodeId id) {
    if (routers_.contains(id)) router(id).Restart();
  };
  return hooks;
}

std::size_t CbtDomain::TotalFibState() const {
  std::size_t total = 0;
  for (const auto& [id, router] : routers_) total += router->fib().StateUnits();
  return total;
}

std::uint64_t CbtDomain::TotalControlMessages() const {
  std::uint64_t total = 0;
  for (const auto& [id, router] : routers_) {
    total += router->stats().ControlMessagesSent();
  }
  return total;
}

void CbtDomain::BindMetrics(obs::Registry& registry) {
  sim_->SetMetrics(&registry);  // binds netsim.subnet.<id>.* as a side effect
  for (const auto& [id, router] : routers_) {
    obs::BindStats(registry, "cbt.router." + std::to_string(id.value()),
                   router->mutable_stats());
  }
  obs::BindStats(registry, "cbt.routing", routes_.mutable_stats());
}

obs::MetricSet CbtDomain::MetricsSnapshot() const {
  assert(sim_->metrics() != nullptr && "call BindMetrics first");
  return sim_->metrics()->Snapshot();
}

std::vector<NodeId> CbtDomain::OnTreeRouters(Ipv4Address group) const {
  std::vector<NodeId> out;
  for (const auto& [id, router] : routers_) {
    if (router->IsOnTree(group)) out.push_back(id);
  }
  return out;
}

}  // namespace cbt::core
