#include "cbt/group_directory.h"

#include <cassert>

namespace cbt::core {

void GroupDirectory::SetGroup(Ipv4Address group,
                              std::vector<Ipv4Address> cores) {
  assert(group.IsMulticast());
  assert(!cores.empty());
  groups_[group] = std::move(cores);
}

void GroupDirectory::RemoveGroup(Ipv4Address group) {
  groups_.erase(group);
  assignments_.erase(group);
}

void GroupDirectory::SetAssignments(Ipv4Address group,
                                    std::map<SubnetId, std::size_t> by_lan) {
  if (by_lan.empty()) {
    assignments_.erase(group);
  } else {
    assignments_[group] = std::move(by_lan);
  }
}

std::size_t GroupDirectory::AssignedIndex(Ipv4Address group,
                                          SubnetId lan) const {
  const auto git = assignments_.find(group);
  if (git == assignments_.end()) return 0;
  const auto it = git->second.find(lan);
  if (it == git->second.end()) return 0;
  const auto cores = groups_.find(group);
  if (cores == groups_.end() || cores->second.empty()) return 0;
  return std::min(it->second, cores->second.size() - 1);
}

std::vector<Ipv4Address> GroupDirectory::CoresFor(Ipv4Address group) const {
  const auto it = groups_.find(group);
  return it == groups_.end() ? std::vector<Ipv4Address>{} : it->second;
}

std::optional<Ipv4Address> GroupDirectory::PrimaryCore(
    Ipv4Address group) const {
  const auto it = groups_.find(group);
  if (it == groups_.end() || it->second.empty()) return std::nullopt;
  return it->second.front();
}

std::vector<Ipv4Address> GroupDirectory::Groups() const {
  std::vector<Ipv4Address> out;
  out.reserve(groups_.size());
  for (const auto& [group, cores] : groups_) out.push_back(group);
  return out;
}

}  // namespace cbt::core
