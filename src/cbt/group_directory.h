// The <core, group> mapping service.
//
// The spec deliberately externalizes core advertisement: "It is assumed
// that hosts receive <core,group> mapping advertisements via some protocol
// external to CBT" (section 2.2), and routers performing non-member
// forwarding "require access to a mapping mechanism between group
// addresses and core routers ... beyond the scope of this document"
// (sections 5.1/5.3). GroupDirectory is that external mechanism: an
// instantly-consistent registry shared by hosts and routers — the idealized
// stand-in for HPIM-style core distribution [8].
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "common/types.h"

namespace cbt::core {

class GroupDirectory {
 public:
  /// Registers (or replaces) a group's ordered core list; cores[0] is the
  /// primary core. This is the "group initiation" act of section 2.1.
  void SetGroup(Ipv4Address group, std::vector<Ipv4Address> cores);

  void RemoveGroup(Ipv4Address group);

  /// Ordered candidate cores for the group; empty when unknown.
  std::vector<Ipv4Address> CoresFor(Ipv4Address group) const;

  std::optional<Ipv4Address> PrimaryCore(Ipv4Address group) const;

  bool Knows(Ipv4Address group) const { return groups_.contains(group); }

  std::vector<Ipv4Address> Groups() const;

 private:
  std::map<Ipv4Address, std::vector<Ipv4Address>> groups_;
};

}  // namespace cbt::core
