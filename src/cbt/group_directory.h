// The <core, group> mapping service.
//
// The spec deliberately externalizes core advertisement: "It is assumed
// that hosts receive <core,group> mapping advertisements via some protocol
// external to CBT" (section 2.2), and routers performing non-member
// forwarding "require access to a mapping mechanism between group
// addresses and core routers ... beyond the scope of this document"
// (sections 5.1/5.3). GroupDirectory is that external mechanism: an
// instantly-consistent registry shared by hosts and routers — the idealized
// stand-in for HPIM-style core distribution [8].
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "common/types.h"

namespace cbt::core {

class GroupDirectory {
 public:
  /// Registers (or replaces) a group's ordered core list; cores[0] is the
  /// primary core. This is the "group initiation" act of section 2.1.
  void SetGroup(Ipv4Address group, std::vector<Ipv4Address> cores);

  void RemoveGroup(Ipv4Address group);

  /// Ordered candidate cores for the group; empty when unknown.
  std::vector<Ipv4Address> CoresFor(Ipv4Address group) const;

  std::optional<Ipv4Address> PrimaryCore(Ipv4Address group) const;

  bool Knows(Ipv4Address group) const { return groups_.contains(group); }

  std::vector<Ipv4Address> Groups() const;

  /// Registers (or replaces) the member-LAN → core-index partition for a
  /// multi-core group: each listed LAN's members join cores[index]'s
  /// subtree. LANs without an entry use the primary (index 0). This is the
  /// locality partition of arXiv 1606.04928 published through the same
  /// idealized mapping service as the core list itself.
  void SetAssignments(Ipv4Address group,
                      std::map<SubnetId, std::size_t> by_lan);

  /// The core-list index `lan`'s members should target, clamped to the
  /// group's current core list (so a core-list replacement can never point
  /// past the end). 0 when the group or LAN is unknown.
  std::size_t AssignedIndex(Ipv4Address group, SubnetId lan) const;

  /// True if the group has any per-LAN assignment registered. Routers use
  /// this to keep single-core behaviour bit-identical when no partition
  /// was ever published.
  bool HasAssignments(Ipv4Address group) const {
    return assignments_.contains(group);
  }

 private:
  std::map<Ipv4Address, std::vector<Ipv4Address>> groups_;
  std::map<Ipv4Address, std::map<SubnetId, std::size_t>> assignments_;
};

}  // namespace cbt::core
