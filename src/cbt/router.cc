#include "cbt/router.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "common/checksum.h"
#include "common/logging.h"
#include "common/small_vec.h"

namespace cbt::core {

using packet::AckSubcode;
using packet::ControlPacket;
using packet::ControlType;
using packet::IgmpMessage;
using packet::IpProtocol;
using packet::JoinSubcode;

namespace {

/// Byte-identical to packet::WithTtl's header rewrite: new TTL, checksum
/// recomputed over the IPv4 header with the checksum field zeroed.
void PatchTtlBytes(std::span<std::uint8_t> bytes, std::uint8_t ttl) {
  bytes[8] = ttl;
  bytes[10] = 0;
  bytes[11] = 0;
  const std::uint16_t sum = InternetChecksum(
      std::span<const std::uint8_t>(bytes.data(), packet::kIpv4HeaderSize));
  bytes[10] = static_cast<std::uint8_t>(sum >> 8);
  bytes[11] = static_cast<std::uint8_t>(sum);
}

}  // namespace

CbtRouter::CbtRouter(netsim::Simulator& sim, NodeId self,
                     routing::RouteManager& routes,
                     const GroupDirectory& directory, CbtConfig config,
                     igmp::IgmpConfig igmp_config)
    : sim_(&sim),
      self_(self),
      routes_(&routes),
      directory_(&directory),
      config_(config),
      primary_address_(sim.PrimaryAddress(self)),
      igmp_(sim, self, igmp_config,
            igmp::RouterIgmp::Callbacks{
                [this](VifIndex vif, Ipv4Address group, Ipv4Address reporter,
                       bool newly) {
                  OnMemberReport(vif, group, reporter, newly);
                },
                [this](VifIndex vif, const IgmpMessage& msg) {
                  OnCoreReport(vif, msg);
                },
                [this](VifIndex vif, Ipv4Address group) {
                  OnGroupExpired(vif, group);
                },
                [this](VifIndex vif, Ipv4Address dst, const IgmpMessage& msg) {
                  SendIgmp(vif, dst, msg);
                }}) {
  echo_timer_.BindTo(sim);
  child_scan_timer_.BindTo(sim);
  iff_scan_timer_.BindTo(sim);
}

void CbtRouter::Start() {
  igmp_.Start();
  echo_timer_.Schedule(config_.echo_interval, [this] { OnEchoTick(); });
  child_scan_timer_.Schedule(config_.child_assert_interval,
                             [this] { OnChildScan(); });
  iff_scan_timer_.Schedule(config_.iff_scan_interval, [this] { OnIffScan(); });
}

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------

void CbtRouter::OnDatagram(VifIndex vif, Ipv4Address /*link_src*/,
                           Ipv4Address /*link_dst*/,
                           std::span<const std::uint8_t> datagram) {
  if (!alive_) return;
  const auto parsed = packet::ParseDatagram(datagram);
  if (!parsed) {
    ++stats_.malformed_control;
    return;
  }
  const packet::Ipv4Header& ip = parsed->ip;

  switch (ip.protocol) {
    case IpProtocol::kIgmp: {
      const auto igmp_msg = packet::ExtractIgmp(*parsed);
      if (!igmp_msg) {
        ++stats_.malformed_control;
        return;
      }
      igmp_.OnMessage(vif, ip.src, *igmp_msg);
      return;
    }
    case IpProtocol::kUdp: {
      if (!OwnsAddress(ip.dst) && !ip.dst.IsMulticast()) {
        // Transit: e.g. the primary core's direct REJOIN-NACTIVE ack.
        ForwardUnicast(ip, datagram);
        return;
      }
      const auto control = packet::ExtractControl(*parsed);
      if (!control) {
        ++stats_.malformed_control;
        return;
      }
      HandleControl(vif, ip, *control);
      return;
    }
    case IpProtocol::kCbt: {
      const std::uint64_t stage = StageClockStart();
      HandleCbtData(vif, ip, datagram);
      StageClockStop(stage);
      return;
    }
    default: {
      const std::uint64_t stage = StageClockStart();
      if (ip.dst.IsMulticast()) {
        if (!ip.dst.IsLinkLocalMulticast()) HandleNativeData(vif, ip, datagram);
      } else if (!OwnsAddress(ip.dst)) {
        ForwardUnicast(ip, datagram);
      }
      StageClockStop(stage);
      return;
    }
  }
}

void CbtRouter::HandleControl(VifIndex vif, const packet::Ipv4Header& ip,
                              const ControlPacket& pkt) {
  OBS_TRACE_VERBOSE(sim_->trace(), .time = sim_->Now(),
                    .kind = obs::TraceKind::kPacket,
                    .name = packet::ControlTypeName(pkt.type),
                    .node = self_.value(), .group = pkt.group,
                    .arg_a = ip.src.bits(), .detail = "rx");
  switch (pkt.type) {
    case ControlType::kJoinRequest:
      HandleJoinRequest(vif, ip, pkt);
      return;
    case ControlType::kJoinAck:
      HandleJoinAck(vif, ip, pkt);
      return;
    case ControlType::kJoinNack:
      HandleJoinNack(vif, ip, pkt);
      return;
    case ControlType::kQuitRequest:
      HandleQuitRequest(vif, ip, pkt);
      return;
    case ControlType::kQuitAck:
      HandleQuitAck(pkt);
      return;
    case ControlType::kFlushTree:
      HandleFlush(vif, ip, pkt);
      return;
    case ControlType::kEchoRequest:
      HandleEchoRequest(vif, ip, pkt);
      return;
    case ControlType::kEchoReply:
      HandleEchoReply(vif, ip, pkt);
      return;
    case ControlType::kCorePing:
      HandleCorePing(ip, pkt);
      return;
    case ControlType::kPingReply:
      HandlePingReply(pkt);
      return;
  }
}

// ---------------------------------------------------------------------------
// Join handling (sections 2.5, 2.6, 6.2, 6.3).
// ---------------------------------------------------------------------------

void CbtRouter::HandleJoinRequest(VifIndex vif, const packet::Ipv4Header& ip,
                                  const ControlPacket& pkt) {
  ++stats_.joins_received;
  CBT_TRACE("[%s %s] rx %s from %s", FormatSimTime(sim_->Now()).c_str(),
            sim_->node(self_).name.c_str(), pkt.Describe().c_str(),
            ip.src.ToString().c_str());
  if (pkt.join_subcode() == JoinSubcode::kRejoinNactive) {
    HandleRejoinNactive(vif, ip, pkt);
    return;
  }

  const Ipv4Address group = pkt.group;
  FibEntry* entry = fib_.Find(group);
  const DownstreamRequester requester{vif, ip.src, pkt.origin,
                                      pkt.join_subcode()};

  // Section 2.5: a router awaiting its own JOIN-ACK "is not permitted to
  // acknowledge any subsequent joins ... rather, the router caches such
  // joins". This must be checked before the on-tree test: a reconnecting
  // router still holds a (parentless) FIB entry but is NOT attached, and
  // acking from it would graft the requester onto a detached subtree.
  // Cores are exempt — they are valid anchors as soon as they know their
  // role, even while re-joining the primary.
  const bool anchored =
      entry != nullptr && (entry->is_core || entry->HasParent());
  if (!anchored) {
    if (const auto it = pending_.find(group); it != pending_.end()) {
      PendingJoin& p = *it->second;
      const bool duplicate = std::any_of(
          p.requesters.begin(), p.requesters.end(),
          [&](const DownstreamRequester& r) {
            return r.from == requester.from && r.origin == requester.origin;
          });
      if (!duplicate) {
        p.requesters.push_back(requester);
        ++stats_.joins_cached;
      }
      return;
    }
  }

  if (anchored) {
    // Already on-tree: terminate the join here (section 2.2).
    const bool convert =
        pkt.join_subcode() == JoinSubcode::kRejoinActive && !entry->is_core &&
        !OwnsAddress(pkt.target_core);
    TerminateJoin(vif, ip, pkt, *entry);
    if (convert && entry->HasParent()) {
      // Section 6.3: first on-tree router converts a REJOIN-ACTIVE to
      // REJOIN-NACTIVE, keeps the origin, inserts its own address in the
      // core-address field, and forwards over its parent interface.
      ++stats_.rejoins_converted;
      OBS_TRACE(sim_->trace(), .time = sim_->Now(),
                .kind = obs::TraceKind::kFsm, .name = "rejoin-converted",
                .node = self_.value(), .group = group);
      ControlPacket nactive;
      nactive.type = ControlType::kJoinRequest;
      nactive.code = static_cast<std::uint8_t>(JoinSubcode::kRejoinNactive);
      nactive.group = group;
      nactive.origin = pkt.origin;
      nactive.target_core = VifAddress(entry->parent_vif);
      nactive.cores = pkt.cores;
      ++stats_.joins_forwarded;
      SendControl(entry->parent_vif, entry->parent_address,
                  entry->parent_address, nactive);
    }
    return;
  }

  if (OwnsAddress(pkt.target_core)) {
    if (directory_->Knows(group)) {
      // A join built from a stale core list can still target us after the
      // directory dropped us from the group (core-list replacement). Do
      // not re-assume the anchor role — nack so the requester re-elects
      // from the current mapping instead of resurrecting the old tree.
      bool still_listed = false;
      for (const Ipv4Address& c : directory_->CoresFor(group)) {
        if (OwnsAddress(c)) still_listed = true;
      }
      if (!still_listed) {
        ControlPacket nack;
        nack.type = ControlType::kJoinNack;
        nack.group = group;
        nack.origin = pkt.origin;
        nack.target_core = pkt.target_core;
        nack.cores = directory_->CoresFor(group);
        ++stats_.nacks_sent;
        SendControl(vif, ip.src, ip.src, nack);
        return;
      }
    }
    // Section 6.2: "a core only becomes aware that it is such by receiving
    // a JOIN-REQUEST". Install as tree (sub)root.
    FibEntry& core_entry = fib_.Create(group);
    core_entry.cores = pkt.cores;
    core_entry.affiliation = pkt.target_core;
    core_entry.is_core = true;
    core_entry.is_primary_core =
        !pkt.cores.empty() && OwnsAddress(pkt.cores.front());
    core_entry.Touch();
    OBS_TRACE(sim_->trace(), .time = sim_->Now(),
              .kind = obs::TraceKind::kFsm, .name = "core-anchored",
              .node = self_.value(), .group = group,
              .arg_a = core_entry.is_primary_core ? 1u : 0u);
    TerminateJoin(vif, ip, pkt, core_entry);
    if (!core_entry.is_primary_core) {
      // Non-primary core: ack first, then join the primary (section 2.5).
      CoreRejoinPrimary(core_entry);
    }
    return;
  }

  // Off-tree transit router: create transient state and forward.
  auto p = std::make_unique<PendingJoin>();
  p->group = group;
  p->cores = pkt.cores;
  p->target_core = pkt.target_core;
  const auto core_pos =
      std::find(p->cores.begin(), p->cores.end(), pkt.target_core);
  p->core_index = core_pos == p->cores.end()
                      ? 0
                      : static_cast<std::size_t>(core_pos - p->cores.begin());
  p->subcode = pkt.join_subcode();
  p->origin = pkt.origin;
  p->locally_originated = false;
  p->started = sim_->Now();
  p->core_attempt_started = sim_->Now();
  p->requesters.push_back(requester);
  p->rtx_timer.BindTo(*sim_);
  p->expire_timer.BindTo(*sim_);
  PendingJoin& ref = *p;
  pending_[group] = std::move(p);
  ++stats_.joins_forwarded;
  if (!ForwardJoin(ref)) {
    PendingJoinFailed(group);
  }
}

void CbtRouter::HandleRejoinNactive(VifIndex vif, const packet::Ipv4Header& ip,
                                    const ControlPacket& pkt) {
  (void)vif;
  (void)ip;
  const Ipv4Address group = pkt.group;

  if (OwnsAddress(pkt.origin)) {
    // Section 6.3: our own rejoin came back — a transient loop. Quit the
    // newly-established parent (or abort the still-pending join; the
    // NACTIVE can outrun our own JOIN-ACK) and retry.
    ++stats_.loops_detected;
    FibEntry* entry = fib_.Find(group);
    // arg_a=1: a FIB entry remains, so the scheduled backoff below will
    // fire a fresh reconnect — the section 6.3 fallback the checker's
    // loop-detect expectation keys off.
    OBS_TRACE(sim_->trace(), .time = sim_->Now(),
              .kind = obs::TraceKind::kFsm, .name = "loop-detected",
              .node = self_.value(), .group = group,
              .arg_a = entry != nullptr ? 1u : 0u);
    const auto quit_toward = [&](VifIndex out_vif, Ipv4Address parent) {
      ControlPacket quit;
      quit.type = ControlType::kQuitRequest;
      quit.group = group;
      quit.origin = primary_address_;
      quit.target_core = parent;
      ++stats_.quits_sent;
      SendControl(out_vif, parent, parent, quit);
    };
    if (entry != nullptr && entry->HasParent()) {
      quit_toward(entry->parent_vif, entry->parent_address);
      entry->parent_address = Ipv4Address{};
      entry->parent_vif = kInvalidVif;
      entry->Touch();
    } else if (const auto it = pending_.find(group); it != pending_.end()) {
      // Ack not yet back: cancel the transient join so the late ack is
      // ignored, and tell the upstream hop to drop the branch it built.
      quit_toward(it->second->upstream_vif, it->second->upstream_next_hop);
      if (it->second->locally_originated) {
        OBS_TRACE(sim_->trace(), .time = sim_->Now(),
                  .kind = obs::TraceKind::kFsm,
                  .phase = obs::TracePhase::kEnd, .name = "join",
                  .node = self_.value(), .group = group,
                  .txn = it->second->txn, .detail = "loop-abort");
      }
      pending_.erase(it);
    }
    // "It then attempts to re-join again" (-02 section 5.3); retry after a
    // backoff so unicast routing has a chance to reconverge.
    sim_->Schedule(config_.pend_join_interval, [this, group] {
      if (fib_.Find(group) != nullptr && !pending_.contains(group)) {
        StartReconnect(group);
      }
    });
    if (callbacks_.on_loop_detected) callbacks_.on_loop_detected(group);
    return;
  }

  FibEntry* entry = fib_.Find(group);
  if (entry == nullptr) return;  // stale; drop

  if (!entry->is_primary_core && !entry->HasParent()) {
    // Detached (re-joining) subtree root: we cannot forward the probe
    // yet. Defer it until our own join resolves so concurrent subtree
    // reconnects still detect mutual-adoption loops.
    if (const auto it = pending_.find(group); it != pending_.end()) {
      it->second->deferred_nactives.push_back(pkt);
    }
    return;
  }

  if (entry->is_primary_core) {
    // Section 8.3.1: the primary core acks a REJOIN-NACTIVE directly to
    // the converting router, whose address rides in the core-address field.
    ControlPacket ack;
    ack.type = ControlType::kJoinAck;
    ack.code = static_cast<std::uint8_t>(AckSubcode::kRejoinNactive);
    ack.group = group;
    ack.origin = pkt.origin;
    ack.target_core = pkt.target_core;
    ack.cores = entry->cores;
    const auto route = routes_->Lookup(self_, pkt.target_core);
    if (route) {
      ++stats_.acks_sent;
      SendControl(route->vif, route->next_hop, pkt.target_core, ack);
    }
    return;
  }

  if (entry->HasParent()) {
    // Loop-detection packet continues up the tree unchanged.
    ++stats_.joins_forwarded;
    ControlPacket fwd = pkt;
    SendControl(entry->parent_vif, entry->parent_address,
                entry->parent_address, fwd);
  }
}

void CbtRouter::TerminateJoin(VifIndex vif, const packet::Ipv4Header& ip,
                              const ControlPacket& pkt, FibEntry& entry) {
  if (entry.cores.empty() && !pkt.cores.empty()) {
    entry.cores = pkt.cores;
    entry.Touch();
  }
  SendAckTo(DownstreamRequester{vif, ip.src, pkt.origin, pkt.join_subcode()},
            entry);
}

bool CbtRouter::ShouldProxyAck(const DownstreamRequester& req) const {
  if (!config_.enable_proxy_ack) return false;
  // Section 2.6: the final ack hop travels over the very subnet the origin
  // D-DR sits on, the requester *is* the origin, and the subnet is a
  // multi-access LAN (a branch rooted at us serves its members directly).
  // Rejoining routers have children and must keep their state.
  if (req.subcode != JoinSubcode::kActiveJoin) return false;
  if (req.from != req.origin) return false;
  if (!SubnetContains(req.vif, req.origin)) return false;
  return sim_->subnet(VifSubnet(req.vif)).multi_access;
}

void CbtRouter::SendAckTo(const DownstreamRequester& req, FibEntry& entry) {
  ControlPacket ack;
  ack.type = ControlType::kJoinAck;
  ack.group = entry.group;
  ack.origin = req.origin;
  // "Actual core affiliation" — the core this (sub)tree hangs from. On a
  // single-core tree that is the primary; under a k-core partition it is
  // whichever assigned core our own branch attached to.
  ack.target_core = !entry.affiliation.IsUnspecified()
                        ? entry.affiliation
                        : (entry.cores.empty() ? Ipv4Address{}
                                               : entry.cores.front());
  ack.cores = entry.cores;

  if (ShouldProxyAck(req)) {
    ack.code = static_cast<std::uint8_t>(AckSubcode::kProxyAck);
    ++stats_.proxy_acks_sent;
    // We become the G-DR for the group on this LAN; the origin keeps no
    // state and no child entry is created (section 2.6).
    gdr_.insert({entry.group, VifSubnet(req.vif)});
    ++dataplane_epoch_;
  } else {
    ack.code = static_cast<std::uint8_t>(AckSubcode::kNormal);
    ++stats_.acks_sent;
    entry.AddChild(req.from, req.vif, sim_->Now());
    OBS_TRACE(sim_->trace(), .time = sim_->Now(),
              .kind = obs::TraceKind::kFsm, .name = "child-added",
              .node = self_.value(), .group = entry.group,
              .arg_a = req.from.bits(), .arg_b = VifAddress(req.vif).bits());
  }
  SendControl(req.vif, req.from, req.from, ack);
}

void CbtRouter::AckRequesters(PendingJoin& pending, FibEntry& entry) {
  for (const DownstreamRequester& req : pending.requesters) {
    SendAckTo(req, entry);
    if (req.subcode == JoinSubcode::kRejoinActive &&
        pending.subcode != JoinSubcode::kRejoinActive && !entry.is_core &&
        entry.HasParent()) {
      // A cached rejoin resolved here while the join we ourselves
      // forwarded was a plain ACTIVE-JOIN: no upstream router saw the
      // rejoin, so the loop-detection conversion must happen here. (When
      // the forwarded join was itself a REJOIN-ACTIVE, the terminating
      // router already converted it — converting again would duplicate
      // the NACTIVE probe.)
      ++stats_.rejoins_converted;
      OBS_TRACE(sim_->trace(), .time = sim_->Now(),
                .kind = obs::TraceKind::kFsm, .name = "rejoin-converted",
                .node = self_.value(), .group = entry.group);
      ControlPacket nactive;
      nactive.type = ControlType::kJoinRequest;
      nactive.code = static_cast<std::uint8_t>(JoinSubcode::kRejoinNactive);
      nactive.group = entry.group;
      nactive.origin = req.origin;
      nactive.target_core = VifAddress(entry.parent_vif);
      nactive.cores = entry.cores;
      ++stats_.joins_forwarded;
      SendControl(entry.parent_vif, entry.parent_address,
                  entry.parent_address, nactive);
    }
  }
  pending.requesters.clear();
}

void CbtRouter::HandleJoinAck(VifIndex vif, const packet::Ipv4Header& ip,
                              const ControlPacket& pkt) {
  ++stats_.acks_received;
  CBT_TRACE("[%s %s] rx %s from %s", FormatSimTime(sim_->Now()).c_str(),
            sim_->node(self_).name.c_str(), pkt.Describe().c_str(),
            ip.src.ToString().c_str());
  if (pkt.ack_subcode() == AckSubcode::kRejoinNactive) {
    // Primary core's direct confirmation of a NACTIVE rejoin we converted;
    // our state was already fixed when we converted, nothing to update.
    return;
  }

  const Ipv4Address group = pkt.group;
  const auto it = pending_.find(group);
  if (it == pending_.end()) return;  // duplicate/stale ack
  PendingJoin& p = *it->second;
  if (vif != p.upstream_vif || ip.src != p.upstream_next_hop) {
    return;  // not from the hop we joined through
  }

  if (pkt.ack_subcode() == AckSubcode::kProxyAck) {
    ++stats_.proxy_acks_received;
    // Section 2.6: cancel all transient state; the sender is now G-DR.
    proxied_groups_[group] = sim_->Now();
    ++dataplane_epoch_;
    const bool fire = p.locally_originated;
    const std::uint64_t txn = p.txn;
    pending_.erase(it);
    if (fire) {
      OBS_TRACE(sim_->trace(), .time = sim_->Now(),
                .kind = obs::TraceKind::kFsm,
                .phase = obs::TracePhase::kEnd, .name = "join",
                .node = self_.value(), .group = group, .txn = txn,
                .detail = "proxy-acked");
      NotifyHostsJoined(group);
      if (callbacks_.on_group_established) {
        callbacks_.on_group_established(group);
      }
    }
    return;
  }

  // Normal ack: "the receipt of a JOIN-ACK ... actually creates a tree
  // branch."
  FibEntry& entry = fib_.Create(group);
  entry.cores = !pkt.cores.empty() ? pkt.cores : p.cores;
  entry.parent_address = ip.src;
  entry.parent_vif = vif;
  entry.Touch();
  entry.last_parent_reply = sim_->Now();
  for (const Ipv4Address& c : entry.cores) {
    if (OwnsAddress(c)) entry.is_core = true;
  }
  entry.is_primary_core =
      !entry.cores.empty() && OwnsAddress(entry.cores.front());
  if (!entry.is_core) {
    // Adopt the upstream's core affiliation; a core keeps its own.
    entry.affiliation = pkt.target_core;
  } else if (entry.affiliation.IsUnspecified()) {
    for (const Ipv4Address& c : entry.cores) {
      if (OwnsAddress(c)) {
        entry.affiliation = c;
        break;
      }
    }
  }
  // The attach event proper: every router (transit or originator) that
  // gains a parent via an ack emits one, before any child-added events it
  // produces by acking cached requesters — the checker's ack-before-attach
  // expectation relies on that order.
  OBS_TRACE(sim_->trace(), .time = sim_->Now(), .kind = obs::TraceKind::kFsm,
            .name = "branch-up", .node = self_.value(), .group = group,
            .arg_a = ip.src.bits(), .txn = p.txn);

  const bool was_reconnect = p.reconnect;
  const bool locally = p.locally_originated;
  AckRequesters(p, entry);
  // Re-emit loop probes that were waiting for us to gain a parent.
  const std::vector<ControlPacket> deferred =
      std::move(p.deferred_nactives);
  const std::uint64_t txn = p.txn;
  pending_.erase(it);
  for (const ControlPacket& probe : deferred) {
    HandleRejoinNactive(entry.parent_vif, ip, probe);
  }

  // "Immediately subsequent to a parent/child relationship being
  // established, a child unicasts a CBT-ECHO-REQUEST to its parent."
  ControlPacket echo;
  echo.type = ControlType::kEchoRequest;
  echo.group = group;
  echo.origin = VifAddress(entry.parent_vif);
  ++stats_.echo_requests_sent;
  SendControl(entry.parent_vif, entry.parent_address, entry.parent_address,
              echo);

  if (locally) {
    OBS_TRACE(sim_->trace(), .time = sim_->Now(),
              .kind = obs::TraceKind::kFsm, .phase = obs::TracePhase::kEnd,
              .name = "join", .node = self_.value(), .group = group,
              .txn = txn,
              .detail = was_reconnect ? "reconnected" : "established");
    if (was_reconnect) {
      ++stats_.reconnects_succeeded;
      if (callbacks_.on_reconnected) callbacks_.on_reconnected(group);
    } else {
      NotifyHostsJoined(group);
      if (callbacks_.on_group_established) {
        callbacks_.on_group_established(group);
      }
    }
  }
}

void CbtRouter::NotifyHostsJoined(Ipv4Address group) {
  if (!config_.notify_hosts_on_join) return;
  // Section 2.5 (-03) proposal: tell waiting member hosts the tree is up.
  for (const VifIndex vif : igmp_.MemberVifs(group)) {
    IgmpMessage note;
    note.type = packet::IgmpType::kJoinConfirmation;
    note.group = group;
    SendIgmp(vif, group, note);
  }
}

void CbtRouter::HandleJoinNack(VifIndex /*vif*/, const packet::Ipv4Header& ip,
                               const ControlPacket& pkt) {
  ++stats_.nacks_received;
  const auto it = pending_.find(pkt.group);
  if (it == pending_.end()) return;
  PendingJoin& p = *it->second;
  if (ip.src != p.upstream_next_hop) return;

  if (p.locally_originated && p.cores.size() > 1) {
    // Try the remaining candidate cores in order.
    for (std::size_t attempt = 1; attempt < p.cores.size(); ++attempt) {
      p.core_index = (p.core_index + 1) % p.cores.size();
      p.target_core = p.cores[p.core_index];
      p.core_attempt_started = sim_->Now();
      if (!OwnsAddress(p.target_core) && ForwardJoin(p)) return;
    }
  }
  PendingJoinFailed(pkt.group);
}

// ---------------------------------------------------------------------------
// Join origination and transit forwarding.
// ---------------------------------------------------------------------------

void CbtRouter::InitiateJoin(Ipv4Address group, std::vector<Ipv4Address> cores,
                             std::size_t target_index) {
  StartJoin(group, std::move(cores), target_index, /*reconnect=*/false);
}

void CbtRouter::StartJoin(Ipv4Address group, std::vector<Ipv4Address> cores,
                          std::size_t target_index, bool reconnect) {
  if (!alive_ || cores.empty() || pending_.contains(group)) return;
  if (target_index >= cores.size()) target_index = 0;

  const Ipv4Address target = cores[target_index];
  if (OwnsAddress(target)) {
    // We are the target core ourselves: instant tree (sub)root.
    FibEntry& entry = fib_.Create(group);
    if (entry.cores.empty()) entry.cores = cores;
    entry.affiliation = target;
    entry.is_core = true;
    entry.is_primary_core = OwnsAddress(cores.front());
    entry.Touch();
    OBS_TRACE(sim_->trace(), .time = sim_->Now(),
              .kind = obs::TraceKind::kFsm, .name = "core-anchored",
              .node = self_.value(), .group = group,
              .arg_a = entry.is_primary_core ? 1u : 0u);
    if (!entry.is_primary_core && !entry.HasParent()) {
      CoreRejoinPrimary(entry);
    }
    if (!reconnect && callbacks_.on_group_established) {
      callbacks_.on_group_established(group);
    }
    return;
  }

  auto p = std::make_unique<PendingJoin>();
  p->group = group;
  p->cores = std::move(cores);
  p->core_index = target_index;
  p->target_core = target;
  p->locally_originated = true;
  p->reconnect = reconnect;
  p->txn = NextTxn();
  p->started = sim_->Now();
  p->core_attempt_started = sim_->Now();
  p->rtx_timer.BindTo(*sim_);
  p->expire_timer.BindTo(*sim_);

  FibEntry* entry = fib_.Find(group);
  p->subcode = (entry != nullptr && !entry->children.empty())
                   ? JoinSubcode::kRejoinActive
                   : JoinSubcode::kActiveJoin;

  // Origin address selection: use the member LAN's address when the group
  // has exactly one local member subnet, so that the section 2.6 proxy-ack
  // check fires only when the join's first hop crosses that same LAN.
  const std::vector<VifIndex> member_vifs = igmp_.MemberVifs(group);
  p->origin = member_vifs.size() == 1 ? VifAddress(member_vifs.front())
                                      : primary_address_;

  PendingJoin& ref = *p;
  pending_[group] = std::move(p);
  ++stats_.joins_originated;
  OBS_TRACE(sim_->trace(), .time = sim_->Now(), .kind = obs::TraceKind::kFsm,
            .phase = obs::TracePhase::kBegin, .name = "join",
            .node = self_.value(), .group = group,
            .arg_a = ref.target_core.bits(), .arg_b = reconnect ? 1u : 0u,
            .txn = ref.txn);
  // Section 6.1: if a core is unreachable, "an alternate core is
  // arbitrarily elected from the core list" — cycle until one routes.
  for (std::size_t attempt = 0; attempt < ref.cores.size(); ++attempt) {
    if (!OwnsAddress(ref.target_core) && ForwardJoin(ref)) return;
    ref.core_index = (ref.core_index + 1) % ref.cores.size();
    ref.target_core = ref.cores[ref.core_index];
    ref.core_attempt_started = sim_->Now();
  }
  PendingJoinFailed(group);
}

std::optional<routing::Route> CbtRouter::ResolveToward(Ipv4Address target) {
  if (tunnels_.HasRankingFor(target)) {
    const auto endpoint = tunnels_.SelectPath(*sim_, self_, target);
    if (!endpoint) return std::nullopt;
    routing::Route route;
    route.vif = endpoint->vif;
    route.next_hop = !endpoint->remote.IsUnspecified()
                         ? endpoint->remote
                         : NeighborAddressOn(endpoint->vif, target);
    if (route.next_hop.IsUnspecified()) return std::nullopt;
    route.cost = 1.0;
    route.hop_count = 1;
    return route;
  }
  return routes_->Lookup(self_, target);
}

Ipv4Address CbtRouter::NeighborAddressOn(VifIndex vif,
                                         Ipv4Address target) const {
  if (SubnetContains(vif, target)) return target;
  Ipv4Address best;
  const netsim::SubnetRecord& subnet = sim_->subnet(VifSubnet(vif));
  for (const auto& [peer, peer_vif] : subnet.attachments) {
    if (peer == self_ || !sim_->node(peer).is_router) continue;
    const Ipv4Address addr = sim_->interface(peer, peer_vif).address;
    if (best.IsUnspecified() || addr < best) best = addr;
  }
  return best;
}

VifMode CbtRouter::EffectiveMode(VifIndex vif) const {
  return tunnels_.ModeOf(
      vif, config_.native_mode ? VifMode::kNative : VifMode::kCbtTunnel);
}

bool CbtRouter::ForwardJoin(PendingJoin& p) {
  const auto route = ResolveToward(p.target_core);
  if (!route || route->vif == kInvalidVif) return false;

  // Section 2.7 re-configuration: if the best next-hop is one of our
  // children, tear that branch down (FLUSH) before joining through it.
  // (A core's rejoin only reaches here after a successful CBT-CORE-PING,
  // so flushing a child branch to route through it will re-converge.)
  if (FibEntry* entry = fib_.Find(p.group);
      entry != nullptr && entry->FindChild(route->next_hop) != nullptr) {
    if (config_.mutation != ProtocolMutation::kSuppressFlush) {
      OBS_TRACE(sim_->trace(), .time = sim_->Now(),
                .kind = obs::TraceKind::kFsm, .name = "flush-sent",
                .node = self_.value(), .group = p.group,
                .arg_a = route->next_hop.bits(),
                .arg_b = VifAddress(route->vif).bits());
      ControlPacket flush;
      flush.type = ControlType::kFlushTree;
      flush.group = p.group;
      flush.origin = primary_address_;
      ++stats_.flushes_sent;
      SendControl(route->vif, route->next_hop, route->next_hop, flush);
    }
    entry->RemoveChild(route->next_hop);
    OBS_TRACE(sim_->trace(), .time = sim_->Now(),
              .kind = obs::TraceKind::kFsm, .name = "child-removed",
              .node = self_.value(), .group = p.group,
              .arg_a = route->next_hop.bits(), .detail = "reconfigure");
  }

  p.upstream_vif = route->vif;
  p.upstream_next_hop = route->next_hop;

  ControlPacket join;
  join.type = ControlType::kJoinRequest;
  join.code = static_cast<std::uint8_t>(p.subcode);
  join.group = p.group;
  join.origin = p.origin;
  join.target_core = p.target_core;
  join.cores = p.cores;
  SendControl(p.upstream_vif, p.upstream_next_hop, p.upstream_next_hop, join);

  const Ipv4Address group = p.group;
  p.rtx_timer.Schedule(config_.pend_join_interval,
                       [this, group] { RetransmitJoin(group); });
  const SimDuration lifetime = p.locally_originated && p.reconnect
                                   ? config_.reconnect_timeout
                                   : config_.expire_pending_join;
  p.expire_timer.Schedule(lifetime, [this, group] { PendingJoinFailed(group); });
  return true;
}

void CbtRouter::RetransmitJoin(Ipv4Address group) {
  const auto it = pending_.find(group);
  if (it == pending_.end()) return;
  PendingJoin& p = *it->second;

  if (p.locally_originated &&
      sim_->Now() - p.core_attempt_started >= config_.pend_join_timeout &&
      p.cores.size() > 1) {
    // PEND-JOIN-TIMEOUT: elect a different core (section 6.1).
    p.core_index = (p.core_index + 1) % p.cores.size();
    p.target_core = p.cores[p.core_index];
    p.core_attempt_started = sim_->Now();
  }

  ++stats_.join_retransmits;
  ControlPacket join;
  join.type = ControlType::kJoinRequest;
  join.code = static_cast<std::uint8_t>(p.subcode);
  join.group = p.group;
  join.origin = p.origin;
  join.target_core = p.target_core;
  join.cores = p.cores;
  const auto route = ResolveToward(p.target_core);
  if (route && route->vif != kInvalidVif) {
    p.upstream_vif = route->vif;
    p.upstream_next_hop = route->next_hop;
    SendControl(p.upstream_vif, p.upstream_next_hop, p.upstream_next_hop,
                join);
  }
  p.rtx_timer.Schedule(config_.pend_join_interval,
                       [this, group] { RetransmitJoin(group); });
}

void CbtRouter::PendingJoinFailed(Ipv4Address group) {
  const auto it = pending_.find(group);
  if (it == pending_.end()) return;
  PendingJoin& p = *it->second;
  CBT_TRACE("[%s %s] pending join for %s failed (origin=%d reconnect=%d)",
            FormatSimTime(sim_->Now()).c_str(), sim_->node(self_).name.c_str(),
            group.ToString().c_str(), p.locally_originated, p.reconnect);
  if (p.locally_originated) {
    OBS_TRACE(sim_->trace(), .time = sim_->Now(),
              .kind = obs::TraceKind::kFsm, .phase = obs::TracePhase::kEnd,
              .name = "join", .node = self_.value(), .group = group,
              .txn = p.txn, .detail = "failed");
  }

  // Propagate failure downstream so cached requesters stop waiting.
  for (const DownstreamRequester& req : p.requesters) {
    ControlPacket nack;
    nack.type = ControlType::kJoinNack;
    nack.group = group;
    nack.origin = req.origin;
    nack.target_core = p.target_core;
    nack.cores = p.cores;
    ++stats_.nacks_sent;
    SendControl(req.vif, req.from, req.from, nack);
  }

  const bool was_reconnect = p.reconnect && p.locally_originated;
  const bool was_core_rejoin = p.core_rejoin;
  pending_.erase(it);

  if (was_core_rejoin) {
    // The primary stopped answering between ping and join. Keep
    // anchoring the group and retry (ping-first) after a long backoff —
    // "the core tree is built on-demand".
    sim_->Schedule(config_.reconnect_timeout, [this, group] {
      FibEntry* entry = fib_.Find(group);
      if (entry != nullptr && entry->is_core && !entry->is_primary_core &&
          !entry->HasParent() && !pending_.contains(group)) {
        CoreRejoinPrimary(*entry);
      }
    });
    return;
  }

  if (was_reconnect) {
    ++stats_.reconnects_failed;
    // RECONNECT-TIMEOUT elapsed: give up, flush the subordinate branch so
    // downstream routers re-attach on their own (section 6.1 fallout).
    if (FibEntry* entry = fib_.Find(group)) {
      OBS_TRACE(sim_->trace(), .time = sim_->Now(),
                .kind = obs::TraceKind::kFsm, .name = "teardown",
                .node = self_.value(), .group = group,
                .arg_b = entry->children.size(), .detail = "reconnect-failed");
      SendFlushToChildren(*entry);
    }
    RemoveGroupState(group);
  }
}

void CbtRouter::SimulateRestart() {
  std::vector<Ipv4Address> groups;
  for (const auto& [group, entry] : fib_) groups.push_back(group);
  for (const Ipv4Address& group : groups) RemoveGroupState(group);
  pending_.clear();
  quitting_.clear();
  core_pings_.clear();
  proxied_groups_.clear();
  gdr_.clear();
  learned_cores_.clear();
  ++dataplane_epoch_;
  flow_cache_.Clear();
  stats_.dataplane_cache_occupancy = 0;
}

void CbtRouter::Crash() {
  alive_ = false;
  SimulateRestart();  // wipes FIB + transient state (their timers die too)
  echo_timer_.Cancel();
  child_scan_timer_.Cancel();
  iff_scan_timer_.Cancel();
  igmp_.ShutDown();
  // Emitted after the wipe so this is the node's final event until
  // Restart() — the checker's crash-silence expectation spans strictly
  // between the crash and restart markers.
  OBS_TRACE(sim_->trace(), .time = sim_->Now(), .kind = obs::TraceKind::kFsm,
            .name = "crash", .node = self_.value());
}

void CbtRouter::Restart() {
  alive_ = true;
  OBS_TRACE(sim_->trace(), .time = sim_->Now(), .kind = obs::TraceKind::kFsm,
            .name = "restart", .node = self_.value());
  Start();
}

void CbtRouter::CoreRejoinPrimary(FibEntry& entry) {
  if (!alive_ || entry.cores.empty() || pending_.contains(entry.group) ||
      core_pings_.contains(entry.group)) {
    return;
  }
  // Probe first: the rejoin may have to flush a child branch to route
  // through it, which must not happen while the primary is unreachable
  // (it would livelock the subtree in flush/join cycles).
  auto ping = std::make_unique<CorePingState>();
  ping->target = entry.cores.front();
  ping->timer.BindTo(*sim_);
  core_pings_[entry.group] = std::move(ping);
  SendCorePing(entry.group);
}

void CbtRouter::SendCorePing(Ipv4Address group) {
  const auto it = core_pings_.find(group);
  if (it == core_pings_.end()) return;
  CorePingState& state = *it->second;

  if (state.attempts >= 3) {
    // Primary unreachable: stay a standalone anchor, re-probe later
    // ("the core tree is built on-demand").
    state.attempts = 0;
    state.timer.Schedule(config_.reconnect_timeout,
                         [this, group] { SendCorePing(group); });
    return;
  }
  ++state.attempts;

  const auto route = ResolveToward(state.target);
  if (route && route->vif != kInvalidVif) {
    ControlPacket ping;
    ping.type = ControlType::kCorePing;
    ping.group = group;
    ping.origin = primary_address_;
    ping.target_core = state.target;
    ++stats_.core_pings_sent;
    SendControl(route->vif, route->next_hop, state.target, ping);
  }
  state.timer.Schedule(config_.pend_join_interval,
                       [this, group] { SendCorePing(group); });
}

void CbtRouter::HandleCorePing(const packet::Ipv4Header& ip,
                               const ControlPacket& pkt) {
  // Addressed to us (dispatch guarantees it): answer toward the origin.
  ++stats_.core_pings_received;
  ControlPacket reply;
  reply.type = ControlType::kPingReply;
  reply.group = pkt.group;
  reply.origin = pkt.origin;
  reply.target_core = ip.dst;
  const auto route = ResolveToward(pkt.origin);
  if (route && route->vif != kInvalidVif) {
    ++stats_.ping_replies_sent;
    SendControl(route->vif, route->next_hop, pkt.origin, reply);
  }
}

void CbtRouter::HandlePingReply(const ControlPacket& pkt) {
  ++stats_.ping_replies_received;
  const auto it = core_pings_.find(pkt.group);
  if (it == core_pings_.end()) return;
  core_pings_.erase(it);
  FibEntry* entry = fib_.Find(pkt.group);
  if (entry != nullptr && entry->is_core && !entry->is_primary_core &&
      !entry->HasParent() && !pending_.contains(pkt.group)) {
    LaunchCoreRejoin(*entry);
  }
}

void CbtRouter::LaunchCoreRejoin(FibEntry& entry) {
  auto p = std::make_unique<PendingJoin>();
  p->group = entry.group;
  p->cores = entry.cores;
  p->core_index = 0;
  p->target_core = entry.cores.front();  // the primary core
  p->subcode = JoinSubcode::kRejoinActive;
  p->origin = primary_address_;
  p->locally_originated = true;
  p->core_rejoin = true;
  p->txn = NextTxn();
  p->started = sim_->Now();
  p->core_attempt_started = sim_->Now();
  p->rtx_timer.BindTo(*sim_);
  p->expire_timer.BindTo(*sim_);
  PendingJoin& ref = *p;
  pending_[entry.group] = std::move(p);
  ++stats_.joins_originated;
  OBS_TRACE(sim_->trace(), .time = sim_->Now(), .kind = obs::TraceKind::kFsm,
            .phase = obs::TracePhase::kBegin, .name = "join",
            .node = self_.value(), .group = entry.group,
            .arg_a = ref.target_core.bits(), .arg_b = 2 /*core rejoin*/,
            .txn = ref.txn);
  if (!ForwardJoin(ref)) {
    PendingJoinFailed(entry.group);
  }
}

// ---------------------------------------------------------------------------
// Teardown (section 2.7) and flush.
// ---------------------------------------------------------------------------

void CbtRouter::HandleQuitRequest(VifIndex vif, const packet::Ipv4Header& ip,
                                  const ControlPacket& pkt) {
  ++stats_.quits_received;
  CBT_TRACE("[%s %s] rx QUIT from %s", FormatSimTime(sim_->Now()).c_str(),
            sim_->node(self_).name.c_str(), ip.src.ToString().c_str());
  FibEntry* entry = fib_.Find(pkt.group);
  if (entry != nullptr && entry->RemoveChild(ip.src)) {
    OBS_TRACE(sim_->trace(), .time = sim_->Now(),
              .kind = obs::TraceKind::kFsm, .name = "child-removed",
              .node = self_.value(), .group = pkt.group,
              .arg_a = ip.src.bits(), .detail = "quit");
  }

  ControlPacket ack;
  ack.type = ControlType::kQuitAck;
  ack.group = pkt.group;
  ack.origin = pkt.origin;
  ++stats_.quit_acks_sent;
  SendControl(vif, ip.src, ip.src, ack);

  // "R3 subsequently checks whether it in turn can send a quit."
  if (entry != nullptr) QuitCheck(pkt.group);
}

void CbtRouter::HandleQuitAck(const ControlPacket& pkt) {
  ++stats_.quit_acks_received;
  const auto it = quitting_.find(pkt.group);
  if (it == quitting_.end()) return;
  const std::uint64_t txn = it->second->txn;
  quitting_.erase(it);
  OBS_TRACE(sim_->trace(), .time = sim_->Now(), .kind = obs::TraceKind::kFsm,
            .phase = obs::TracePhase::kEnd, .name = "quit",
            .node = self_.value(), .group = pkt.group, .txn = txn,
            .detail = "acked");
  RemoveGroupState(pkt.group);
}

std::optional<std::size_t> CbtRouter::AssignedCoreIndex(Ipv4Address group) {
  if (!directory_->HasAssignments(group)) return std::nullopt;
  const std::vector<VifIndex> member_vifs = igmp_.MemberVifs(group);
  if (member_vifs.empty()) return std::nullopt;
  // First member LAN wins: a D-DR whose LANs straddle two partitions still
  // builds a single branch, and the tree covers every LAN either way.
  return directory_->AssignedIndex(group, VifSubnet(member_vifs.front()));
}

void CbtRouter::ReconcileCoreRole(Ipv4Address group) {
  if (!alive_ || pending_.contains(group) || quitting_.contains(group)) return;
  FibEntry* entry = fib_.Find(group);
  if (entry == nullptr || !directory_->Knows(group)) return;
  const std::vector<Ipv4Address> current = directory_->CoresFor(group);
  if (current.empty()) return;
  Ipv4Address owned;
  for (const Ipv4Address& c : current) {
    if (OwnsAddress(c)) {
      owned = c;
      break;
    }
  }
  const bool should_be_core = !owned.IsUnspecified();
  const bool should_be_primary = should_be_core && OwnsAddress(current.front());
  if (entry->is_core == should_be_core &&
      entry->is_primary_core == should_be_primary) {
    return;
  }

  if (!should_be_core) {
    // The directory replaced the core list and dropped us. Stop anchoring;
    // CBT's soft state has no way to hand an anchor role over in place, so
    // a detached ex-anchor tears its subtree down through the normal flush
    // machinery and every branch re-elects from the current mapping. (The
    // hitless path is the migrator's parent-chain reversal, which re-homes
    // the subtree before this demotion ever sees a detached anchor.)
    entry->is_core = false;
    entry->is_primary_core = false;
    entry->cores = current;
    entry->affiliation = {};
    entry->Touch();
    OBS_TRACE(sim_->trace(), .time = sim_->Now(),
              .kind = obs::TraceKind::kFsm, .name = "core-demoted",
              .node = self_.value(), .group = group);
    if (!entry->HasParent()) {
      const bool rejoin = igmp_.AnyMembers(group);
      OBS_TRACE(sim_->trace(), .time = sim_->Now(),
                .kind = obs::TraceKind::kFsm, .name = "teardown",
                .node = self_.value(), .group = group,
                .arg_b = entry->children.size(), .detail = "core-demoted");
      SendFlushToChildren(*entry);
      RemoveGroupState(group);
      if (rejoin) {
        sim_->Schedule(config_.flush_rejoin_delay, [this, group] {
          if (!IsOnTree(group) && !IsPending(group)) {
            std::vector<Ipv4Address> cores = directory_->CoresFor(group);
            if (!cores.empty()) {
              StartJoin(group, std::move(cores),
                        AssignedCoreIndex(group).value_or(0),
                        /*reconnect=*/false);
            }
          }
        });
      }
    }
    return;
  }

  // Promoted, or only the primary flag flipped. Keep any existing parent:
  // a newly-listed core already on the old tree stays attached until the
  // old anchor drains — the make-before-break window of a live migration.
  entry->is_core = true;
  entry->is_primary_core = should_be_primary;
  entry->cores = current;
  entry->affiliation = owned;
  entry->Touch();
  OBS_TRACE(sim_->trace(), .time = sim_->Now(), .kind = obs::TraceKind::kFsm,
            .name = "core-anchored", .node = self_.value(), .group = group,
            .arg_a = should_be_primary ? 1u : 0u, .detail = "reconciled");
  if (!should_be_primary && !entry->HasParent()) {
    CoreRejoinPrimary(*entry);
  }
}

void CbtRouter::QuitCheck(Ipv4Address group) {
  ReconcileCoreRole(group);
  FibEntry* entry = fib_.Find(group);
  if (entry == nullptr) return;
  // The primary core is the group's permanent anchor. Non-primary cores
  // tear their backbone link down like any leaf once nothing hangs off
  // them — "the core tree is built on-demand" (-03 authors' note) — and
  // re-learn their role from the next join that targets them (6.2).
  if (entry->is_primary_core) return;
  if (!entry->children.empty()) return;
  if (igmp_.AnyMembers(group)) return;
  if (quitting_.contains(group) || pending_.contains(group)) return;

  if (!entry->HasParent()) {
    RemoveGroupState(group);  // detached root with nothing below
    return;
  }
  SendQuit(group);
}

void CbtRouter::SendQuit(Ipv4Address group) {
  FibEntry* entry = fib_.Find(group);
  if (entry == nullptr || !entry->HasParent()) return;

  auto q = std::make_unique<QuitState>();
  q->parent = entry->parent_address;
  q->vif = entry->parent_vif;
  q->txn = NextTxn();
  q->timer.BindTo(*sim_);
  QuitState& ref = *q;
  quitting_[group] = std::move(q);
  OBS_TRACE(sim_->trace(), .time = sim_->Now(), .kind = obs::TraceKind::kFsm,
            .phase = obs::TracePhase::kBegin, .name = "quit",
            .node = self_.value(), .group = group,
            .arg_a = ref.parent.bits(), .txn = ref.txn);

  // Retry loop: "the child nevertheless removes the parent information
  // after some small number (typically 3) of re-tries."
  const auto send = [this, group](auto&& self_fn) -> void {
    const auto it = quitting_.find(group);
    if (it == quitting_.end()) return;
    QuitState& q = *it->second;
    if (q.attempts >= config_.quit_retries) {
      const std::uint64_t txn = q.txn;
      quitting_.erase(it);
      OBS_TRACE(sim_->trace(), .time = sim_->Now(),
                .kind = obs::TraceKind::kFsm, .phase = obs::TracePhase::kEnd,
                .name = "quit", .node = self_.value(), .group = group,
                .txn = txn, .detail = "gave-up");
      RemoveGroupState(group);
      return;
    }
    ++q.attempts;
    ControlPacket quit;
    quit.type = ControlType::kQuitRequest;
    quit.group = group;
    quit.origin = primary_address_;
    quit.target_core = q.parent;
    ++stats_.quits_sent;
    SendControl(q.vif, q.parent, q.parent, quit);
    q.timer.Schedule(config_.pend_join_interval,
                     [this, self_fn]() { self_fn(self_fn); });
  };
  (void)ref;
  send(send);
}

void CbtRouter::SendFlushToChildren(FibEntry& entry) {
  if (config_.mutation == ProtocolMutation::kSuppressFlush) return;
  for (const ChildEntry& child : entry.children) {
    OBS_TRACE(sim_->trace(), .time = sim_->Now(),
              .kind = obs::TraceKind::kFsm, .name = "flush-sent",
              .node = self_.value(), .group = entry.group,
              .arg_a = child.address.bits(),
              .arg_b = VifAddress(child.vif).bits());
    ControlPacket flush;
    flush.type = ControlType::kFlushTree;
    flush.group = entry.group;
    flush.origin = primary_address_;
    ++stats_.flushes_sent;
    SendControl(child.vif, child.address, child.address, flush);
  }
}

void CbtRouter::HandleFlush(VifIndex vif, const packet::Ipv4Header& ip,
                            const ControlPacket& pkt) {
  ++stats_.flushes_received;
  CBT_TRACE("[%s %s] rx FLUSH from %s", FormatSimTime(sim_->Now()).c_str(),
            sim_->node(self_).name.c_str(), ip.src.ToString().c_str());
  FibEntry* entry = fib_.Find(pkt.group);
  if (entry == nullptr) return;
  // Only the parent may flush us.
  if (!entry->HasParent() || vif != entry->parent_vif ||
      ip.src != entry->parent_address) {
    return;
  }
  const bool had_members = igmp_.AnyMembers(pkt.group);
  std::vector<Ipv4Address> cores = entry->cores;
  if (directory_->Knows(pkt.group)) {
    // Re-resolve from the mapping service: a flush is exactly when a
    // replaced core list must take effect, and the branch's cached list
    // may predate the replacement.
    std::vector<Ipv4Address> current = directory_->CoresFor(pkt.group);
    if (!current.empty()) cores = std::move(current);
  }
  const bool will_rejoin = had_members && !cores.empty();
  // Emitted before the downstream flushes so the flush-sent events read
  // as consequences of this one (same timestamp, later sequence).
  OBS_TRACE(sim_->trace(), .time = sim_->Now(), .kind = obs::TraceKind::kFsm,
            .name = "flushed", .node = self_.value(), .group = pkt.group,
            .arg_a = ip.src.bits(), .arg_b = entry->children.size(),
            .detail = will_rejoin ? "rejoin-scheduled" : "no-rejoin");
  SendFlushToChildren(*entry);
  RemoveGroupState(pkt.group);

  if (will_rejoin) {
    // "Routers that have received a flush message will re-establish
    // themselves on the delivery tree if they have directly connected
    // subnets with group presence."
    const Ipv4Address group = pkt.group;
    sim_->Schedule(config_.flush_rejoin_delay,
                   [this, group, cores = std::move(cores)] {
                     if (!IsOnTree(group) && !IsPending(group)) {
                       // Section 6.1 under a k-core partition: rejoin
                       // toward this LAN's assigned core, not blindly
                       // toward the primary.
                       StartJoin(group, cores,
                                 AssignedCoreIndex(group).value_or(0),
                                 /*reconnect=*/false);
                     }
                   });
  }
}

void CbtRouter::RemoveGroupState(Ipv4Address group) {
  // Close any span the wipe would otherwise orphan: a locally-originated
  // join or an in-flight quit erased here ends without its own outcome
  // event (flush-driven teardown, restart, ...), and the checker must see
  // a terminal rather than report a lost transaction.
  if (const auto it = pending_.find(group);
      it != pending_.end() && it->second->locally_originated) {
    OBS_TRACE(sim_->trace(), .time = sim_->Now(),
              .kind = obs::TraceKind::kFsm, .phase = obs::TracePhase::kEnd,
              .name = "join", .node = self_.value(), .group = group,
              .txn = it->second->txn, .detail = "superseded");
  }
  if (const auto it = quitting_.find(group); it != quitting_.end()) {
    OBS_TRACE(sim_->trace(), .time = sim_->Now(),
              .kind = obs::TraceKind::kFsm, .phase = obs::TracePhase::kEnd,
              .name = "quit", .node = self_.value(), .group = group,
              .txn = it->second->txn, .detail = "superseded");
  }
  fib_.Remove(group);
  pending_.erase(group);
  quitting_.erase(group);
  core_pings_.erase(group);
  if (proxied_groups_.erase(group) > 0) ++dataplane_epoch_;
  for (auto it = gdr_.begin(); it != gdr_.end();) {
    if (it->first == group) {
      it = gdr_.erase(it);
      ++dataplane_epoch_;
    } else {
      ++it;
    }
  }
}

// ---------------------------------------------------------------------------
// Keepalives and failure detection (sections 6, 8.4, 9).
// ---------------------------------------------------------------------------

void CbtRouter::OnEchoTick() {
  // Child -> parent echoes, optionally aggregated per parent neighbour.
  // Aggregation carries the covered group range as <low group, mask>
  // (Figure 9): the narrowest common prefix of all groups sharing the
  // parent — "provided aggregation is at all possible; this depends on
  // coordinated multicast address assignment". Disjoint assignments
  // degrade to mask 0 (all groups via this neighbour).
  if (config_.aggregate_echo) {
    std::map<std::pair<Ipv4Address, VifIndex>, std::vector<Ipv4Address>>
        parents;
    for (const auto& [group, entry] : fib_) {
      if (entry.HasParent()) {
        parents[{entry.parent_address, entry.parent_vif}].push_back(group);
      }
    }
    for (const auto& [parent, groups] : parents) {
      const auto& [addr, vif] = parent;
      // Common-prefix mask over the covered groups.
      std::uint32_t mask = 0xFFFFFFFFu;
      Ipv4Address low = groups.front();
      for (const Ipv4Address g : groups) {
        if (g < low) low = g;
        const std::uint32_t diff = g.bits() ^ groups.front().bits();
        while ((diff & mask) != 0) mask <<= 1;
      }
      ControlPacket echo;
      echo.type = ControlType::kEchoRequest;
      echo.aggregate = true;
      echo.group = low;
      echo.group_mask = mask;
      ++stats_.echo_requests_sent;
      SendControl(vif, addr, addr, echo);
    }
  } else {
    for (const auto& [group, entry] : fib_) {
      if (!entry.HasParent()) continue;
      ControlPacket echo;
      echo.type = ControlType::kEchoRequest;
      echo.group = group;
      ++stats_.echo_requests_sent;
      SendControl(entry.parent_vif, entry.parent_address,
                  entry.parent_address, echo);
    }
  }

  // Parent-liveness: CBT-ECHO-TIMEOUT after the last reply means the
  // parent (or the path to it) failed (section 6.1).
  std::vector<std::pair<Ipv4Address, Ipv4Address>> lost;  // (group, parent)
  for (const auto& [group, entry] : fib_) {
    if (entry.HasParent() &&
        sim_->Now() - entry.last_parent_reply > config_.echo_timeout) {
      lost.push_back({group, entry.parent_address});
    }
  }
  for (const auto& [group, parent] : lost) {
    ++stats_.parent_losses;
    OBS_TRACE(sim_->trace(), .time = sim_->Now(),
              .kind = obs::TraceKind::kFsm, .name = "parent-lost",
              .node = self_.value(), .group = group,
              .arg_a = parent.bits());
    CBT_DEBUG("cbt[%s]: parent unreachable for %s, reconnecting",
              sim_->node(self_).name.c_str(), group.ToString().c_str());
    if (callbacks_.on_parent_lost) callbacks_.on_parent_lost(group);
    StartReconnect(group);
  }

  echo_timer_.Schedule(config_.echo_interval, [this] { OnEchoTick(); });
}

void CbtRouter::HandleEchoRequest(VifIndex vif, const packet::Ipv4Header& ip,
                                  const ControlPacket& pkt) {
  ++stats_.echo_requests_received;
  // Refresh matching child entries. Reply only when we actually hold
  // parent state for the sender: a restarted / stateless router must stay
  // silent so the child's CBT-ECHO-TIMEOUT fires and it re-joins
  // (section 6.2 non-core restart depends on this).
  const auto covered = [&](Ipv4Address group) {
    if (!pkt.aggregate) return group == pkt.group;
    // Figure 9 range match; mask 0 covers every group via this neighbour.
    return (group.bits() & pkt.group_mask) ==
           (pkt.group.bits() & pkt.group_mask);
  };
  bool known_child = false;
  for (auto& [group, entry] : fib_) {
    if (!covered(group)) continue;
    if (ChildEntry* child = entry.FindChild(ip.src);
        child != nullptr && child->vif == vif) {
      child->last_heard = sim_->Now();
      known_child = true;
    }
  }
  if (!known_child) return;
  ControlPacket reply;
  reply.type = ControlType::kEchoReply;
  reply.aggregate = pkt.aggregate;
  reply.group = pkt.group;
  reply.group_mask = pkt.group_mask;
  ++stats_.echo_replies_sent;
  SendControl(vif, ip.src, ip.src, reply);
}

void CbtRouter::HandleEchoReply(VifIndex vif, const packet::Ipv4Header& ip,
                                const ControlPacket& pkt) {
  ++stats_.echo_replies_received;
  for (auto& [group, entry] : fib_) {
    if (!pkt.aggregate) {
      if (group != pkt.group) continue;
    } else if ((group.bits() & pkt.group_mask) !=
               (pkt.group.bits() & pkt.group_mask)) {
      continue;
    }
    if (entry.HasParent() && entry.parent_vif == vif &&
        entry.parent_address == ip.src) {
      entry.last_parent_reply = sim_->Now();
    }
  }
}

void CbtRouter::OnChildScan() {
  std::vector<Ipv4Address> affected;
  for (auto& [group, entry] : fib_) {
    const SimTime now = sim_->Now();
    const auto stale = [&](const ChildEntry& c) {
      return now - c.last_heard > config_.child_assert_expire;
    };
    const auto removed =
        std::count_if(entry.children.begin(), entry.children.end(), stale);
    if (removed > 0) {
      stats_.children_expired += static_cast<std::uint64_t>(removed);
      for (const ChildEntry& c : entry.children) {
        if (!stale(c)) continue;
        OBS_TRACE(sim_->trace(), .time = sim_->Now(),
                  .kind = obs::TraceKind::kFsm, .name = "child-removed",
                  .node = self_.value(), .group = group,
                  .arg_a = c.address.bits(), .detail = "expired");
      }
      entry.children.erase(
          std::remove_if(entry.children.begin(), entry.children.end(), stale),
          entry.children.end());
      entry.Touch();
      affected.push_back(group);
    }
  }
  for (const Ipv4Address& group : affected) QuitCheck(group);
  child_scan_timer_.Schedule(config_.child_assert_interval,
                             [this] { OnChildScan(); });
}

void CbtRouter::OnIffScan() {
  std::vector<Ipv4Address> groups;
  for (const auto& [group, entry] : fib_) groups.push_back(group);
  for (const Ipv4Address& group : groups) QuitCheck(group);
  iff_scan_timer_.Schedule(config_.iff_scan_interval, [this] { OnIffScan(); });
}

void CbtRouter::StartReconnect(Ipv4Address group) {
  FibEntry* entry = fib_.Find(group);
  if (!alive_ || entry == nullptr || pending_.contains(group)) return;
  CBT_TRACE("[%s %s] reconnect for %s", FormatSimTime(sim_->Now()).c_str(),
            sim_->node(self_).name.c_str(), group.ToString().c_str());

  entry->parent_address = Ipv4Address{};
  entry->parent_vif = kInvalidVif;
  entry->Touch();

  std::vector<Ipv4Address> cores = entry->cores;
  if (cores.empty()) cores = directory_->CoresFor(group);
  if (cores.empty()) {
    OBS_TRACE(sim_->trace(), .time = sim_->Now(),
              .kind = obs::TraceKind::kFsm, .name = "teardown",
              .node = self_.value(), .group = group,
              .arg_b = entry->children.size(), .detail = "no-route");
    SendFlushToChildren(*entry);
    RemoveGroupState(group);
    return;
  }
  // "arbitrarily choosing an alternate core from its list of cores" —
  // except under a k-core partition, where the member LANs' assigned core
  // makes the choice purposeful (StartJoin still cycles past it if it is
  // unreachable, section 6.1).
  std::size_t index = 0;
  const std::optional<std::size_t> assigned = AssignedCoreIndex(group);
  if (assigned.has_value() && *assigned < cores.size()) {
    index = *assigned;
  } else if (cores.size() > 1) {
    index = static_cast<std::size_t>(sim_->rng().NextBelow(cores.size()));
  }
  StartJoin(group, std::move(cores), index, /*reconnect=*/true);
}

// ---------------------------------------------------------------------------
// IGMP-driven behaviour (sections 2.3, 2.5, 2.7).
// ---------------------------------------------------------------------------

void CbtRouter::OnMemberReport(VifIndex vif, Ipv4Address group,
                               Ipv4Address /*reporter*/, bool /*newly*/) {
  if (!group.IsMulticast() || group.IsLinkLocalMulticast()) return;
  if (!igmp_.IsQuerier(vif)) return;  // only the D-DR originates joins
  if (IsOnTree(group) || IsPending(group)) return;
  if (const auto it = proxied_groups_.find(group);
      it != proxied_groups_.end()) {
    // A G-DR covered this LAN at it->second; confirm it still does by
    // re-joining once the marker goes stale (a fresh proxy-ack renews it,
    // a normal ack or a new G-DR repairs a silent G-DR loss).
    if (sim_->Now() - it->second < config_.proxy_refresh_interval) return;
    proxied_groups_.erase(it);
    ++dataplane_epoch_;
  }
  // Core information: from a previously heard RP/Core-Report, falling back
  // to the external directory ("or by some other means", section 2.5).
  std::vector<Ipv4Address> cores;
  std::size_t target_index = 0;
  if (const auto it = learned_cores_.find(group); it != learned_cores_.end()) {
    cores = it->second.first;
    target_index = it->second.second;
  } else {
    cores = directory_->CoresFor(group);
    // Multi-core partition: this LAN's members join their assigned core's
    // subtree (the locality partition published alongside the core list).
    target_index = directory_->AssignedIndex(group, VifSubnet(vif));
  }
  if (cores.empty()) return;  // no <core,group> mapping yet
  StartJoin(group, std::move(cores), target_index, /*reconnect=*/false);
}

void CbtRouter::OnCoreReport(VifIndex vif, const IgmpMessage& msg) {
  if (msg.cores.empty()) return;
  learned_cores_[msg.group] = {msg.cores, msg.target_core_index};
  // The RP/Core-Report may arrive after the membership report (section
  // 2.5 tolerates either order); if membership is already known, join
  // now. Never join on the core report alone — "the receipt of an IGMP
  // group membership report ... triggers the tree joining process".
  if (igmp_.AnyMembers(msg.group)) {
    OnMemberReport(vif, msg.group, Ipv4Address{}, false);
  }
}

void CbtRouter::OnGroupExpired(VifIndex /*vif*/, Ipv4Address group) {
  if (proxied_groups_.erase(group) > 0) ++dataplane_epoch_;
  QuitCheck(group);
}

// ---------------------------------------------------------------------------
// Data plane (sections 4, 5, 7).
// ---------------------------------------------------------------------------

void CbtRouter::HandleNativeData(VifIndex vif, const packet::Ipv4Header& ip,
                                 std::span<const std::uint8_t> datagram) {
  const Ipv4Address group = ip.dst;
  const bool local_origin = SubnetContains(vif, ip.src);
  FibEntry* entry = fib_.Find(group);

  if (entry == nullptr) {
    // Sections 5.1/5.3 non-member sending: the subnet's DR encapsulates
    // the packet and unicasts it toward a core for the group.
    if (local_origin && IsSubnetDr(group, vif) &&
        !proxied_groups_.contains(group)) {
      RelayNonMemberData(vif, ip, datagram);
    }
    return;
  }

  // Section 7: native data must arrive over a valid on-tree interface; the
  // only other acceptable source is a locally-originated packet on a LAN
  // we are DR for.
  const bool from_tree = entry->IsTreeVif(vif);
  const bool from_local_lan = local_origin && IsSubnetDr(group, vif);
  if (!from_tree && !from_local_lan) {
    // Either a non-local source forged onto a leaf LAN (the section 5
    // local-origin check) or an off-tree arrival (section 7).
    if (!local_origin) {
      ++stats_.data_dropped_not_local;
    } else {
      ++stats_.data_dropped_off_tree;
    }
    return;
  }

  if (config_.dataplane == DataplaneMode::kFast) {
    if (ip.ttl <= 1) {
      ++stats_.data_dropped_ttl;
      return;
    }
    const auto ttl = static_cast<std::uint8_t>(ip.ttl - 1);
    // Zero-copy transit: when the delivery closure is the arriving
    // buffer's sole owner (always true on point-to-point hops), patch
    // the TTL in place and fan out the very buffer that carried the
    // packet in. Otherwise fall back to the one-copy hop decrement —
    // one arena staging instead of WithDecrementedTtl's vector round
    // trip that the arena would copy again.
    if (const netsim::PacketRef* arrival =
            sim_->PatchableDeliveryRef(datagram)) {
      PatchTtlBytes(sim_->MutablePacket(*arrival), ttl);
      ForwardAlongTree(vif, ip.src, *entry, ip, datagram, nullptr, arrival);
      return;
    }
    const netsim::PacketRef ref = MakeTtlPatchedPacket(datagram, ttl);
    ForwardAlongTree(vif, ip.src, *entry, ip, ref.bytes(), nullptr, &ref);
    return;
  }
  const auto forwarded = packet::WithDecrementedTtl(datagram);
  if (!forwarded) {
    ++stats_.data_dropped_ttl;
    return;
  }
  ForwardAlongTree(vif, ip.src, *entry, ip, *forwarded, nullptr);
}

void CbtRouter::HandleCbtData(VifIndex vif, const packet::Ipv4Header& outer,
                              std::span<const std::uint8_t> datagram) {
  const auto parsed = packet::ParseDatagram(datagram);
  if (!parsed) return;
  const auto data = packet::ExtractCbtModeData(*parsed);
  if (!data) {
    ++stats_.malformed_control;
    return;
  }

  FibEntry* entry = fib_.Find(data->header.group);
  if (entry == nullptr) {
    if (!OwnsAddress(outer.dst)) {
      // Transit hop of a non-member sender's unicast toward the core.
      ++stats_.data_nonmember_relayed;
      ForwardUnicast(outer, datagram);
    } else {
      ++stats_.data_dropped_no_state;
    }
    return;
  }

  // Section 7: an on-tree packet arriving over an off-tree interface has
  // wandered; discard. Off-tree (0x00) arrivals are legitimate non-member
  // data reaching the tree.
  if (data->header.on_tree && !entry->IsTreeVif(vif)) {
    ++stats_.data_dropped_off_tree;
    return;
  }

  packet::CbtDataHeader hdr = data->header;
  hdr.on_tree = true;  // first on-tree router flips 0x00 -> 0xff
  if (hdr.ip_ttl <= 1) {
    ++stats_.data_dropped_ttl;
    return;
  }
  hdr.ip_ttl = static_cast<std::uint8_t>(hdr.ip_ttl - 1);

  const auto inner = packet::ParseDatagram(data->original_datagram);
  if (!inner) return;
  ForwardAlongTree(vif, outer.src, *entry, inner->ip, data->original_datagram,
                   &hdr);
}

void CbtRouter::ForwardAlongTree(VifIndex arrival_vif, Ipv4Address arrival_src,
                                 const FibEntry& entry,
                                 const packet::Ipv4Header& inner_ip,
                                 std::span<const std::uint8_t> inner_datagram,
                                 const packet::CbtDataHeader* cbt,
                                 const netsim::PacketRef* prebuilt) {
  // Effective CBT header for any encapsulated output (and the TTL source
  // for native outputs of a packet that arrived encapsulated).
  packet::CbtDataHeader hdr;
  if (cbt != nullptr) {
    hdr = *cbt;
  } else {
    // First-hop state for a packet sourced on a local LAN; the caller
    // already decremented the inner datagram's TTL.
    hdr.group = entry.group;
    hdr.core = entry.cores.empty() ? Ipv4Address{} : entry.cores.front();
    hdr.origin = inner_ip.src;
    hdr.ip_ttl = inner_ip.ttl;
    hdr.on_tree = true;
  }

  if (config_.dataplane == DataplaneMode::kSlow) {
    ForwardAlongTreeSlow(arrival_vif, arrival_src, entry, inner_ip,
                         inner_datagram, cbt, hdr);
    return;
  }

  const FlowKey key{entry.group, arrival_vif, arrival_src, cbt != nullptr};
  FlowSlot& slot = flow_cache_.SlotFor(key);
  const std::uint64_t epoch = DataplaneEpoch();
  if (!slot.valid || !(slot.key == key)) {
    ++stats_.dataplane_cache_misses;
    slot.key = key;
    slot.decision = BuildFlowDecision(entry, key);
    slot.table_generation = fib_.table_generation();
    slot.entry_generation = entry.generation;
    slot.epoch = epoch;
    slot.valid = true;
    stats_.dataplane_cache_occupancy = flow_cache_.Occupancy();
  } else if (slot.table_generation != fib_.table_generation() ||
             slot.entry_generation != entry.generation ||
             slot.epoch != epoch) {
    ++stats_.dataplane_cache_invalidates;
    slot.decision = BuildFlowDecision(entry, key);
    slot.table_generation = fib_.table_generation();
    slot.entry_generation = entry.generation;
    slot.epoch = epoch;
  } else {
    ++stats_.dataplane_cache_hits;
  }
  ExecuteFlowDecision(slot.decision, entry, inner_ip, inner_datagram, cbt,
                      hdr, prebuilt);
}

FlowDecision CbtRouter::BuildFlowDecision(const FibEntry& entry,
                                          const FlowKey& key) const {
  // Mirrors ForwardAlongTreeSlow's per-packet collection exactly — the
  // slow path is the oracle, this is its arrival-invariant projection.
  FlowDecision d;
  const auto add_native = [&](VifIndex v) {
    if (v != key.arrival_vif &&
        std::find(d.native_vifs.begin(), d.native_vifs.end(), v) ==
            d.native_vifs.end()) {
      d.native_vifs.push_back(v);
    }
  };
  if (entry.HasParent() && !(entry.parent_vif == key.arrival_vif &&
                             entry.parent_address == key.arrival_src)) {
    if (EffectiveMode(entry.parent_vif) == VifMode::kNative) {
      add_native(entry.parent_vif);
    } else {
      d.cbt_targets.push_back({entry.parent_vif,
                               VifAddress(entry.parent_vif),
                               entry.parent_address});
    }
  }
  entry.ForEachChildVif([&](VifIndex v) {
    if (EffectiveMode(v) == VifMode::kNative) {
      add_native(v);
      return;
    }
    std::size_t kid_count = 0;
    Ipv4Address sole_kid;
    entry.ForEachChildOnVif(v, [&](const ChildEntry& c) {
      if (v == key.arrival_vif && c.address == key.arrival_src) return;
      sole_kid = c.address;
      ++kid_count;
    });
    if (kid_count == 0) return;
    d.cbt_targets.push_back(
        {v, VifAddress(v), kid_count == 1 ? sole_kid : entry.group});
  });
  for (const VifIndex v : igmp_.MemberVifs(entry.group)) {
    if (!IsSubnetDr(entry.group, v)) continue;
    if (!key.cbt_arrival && v == key.arrival_vif) continue;  // on wire
    if (std::find(d.native_vifs.begin(), d.native_vifs.end(), v) !=
        d.native_vifs.end()) {
      continue;  // a native tree transmission covers this LAN
    }
    d.member_vifs.push_back(v);
  }
  return d;
}

void CbtRouter::ExecuteFlowDecision(const FlowDecision& decision,
                                    const FibEntry& entry,
                                    const packet::Ipv4Header& inner_ip,
                                    std::span<const std::uint8_t> inner_datagram,
                                    const packet::CbtDataHeader* cbt,
                                    const packet::CbtDataHeader& hdr,
                                    const netsim::PacketRef* prebuilt) {
  // Native tree outputs: every vif carries the same bytes, so serialize
  // once into the arena and fan the shared buffer out.
  netsim::PacketRef native_ref;
  std::size_t native_size = 0;
  if (!decision.native_vifs.empty()) {
    native_size = inner_datagram.size();
    if (cbt != nullptr) {
      native_ref = MakeTtlPatchedPacket(inner_datagram, hdr.ip_ttl);
    } else if (prebuilt != nullptr) {
      native_ref = *prebuilt;
    } else {
      native_ref = sim_->MakePacket(inner_datagram);
    }
    for (const VifIndex v : decision.native_vifs) {
      stats_.data_bytes_sent += native_size;
      ++stats_.data_forwarded_tree;
      sim_->SendDatagramRef(self_, v, entry.group, native_ref);
    }
  }

  // CBT-mode outputs: the outer header template (and its invariant inner
  // payload) is encoded once; each target patches 8 address bytes and
  // re-checksums the outer header.
  if (!decision.cbt_targets.empty()) {
    if (cbt == nullptr) ++stats_.data_encapsulated;
    const packet::CbtModeEncoder encoder(hdr, inner_datagram);
    for (const FlowCbtTarget& target : decision.cbt_targets) {
      auto bytes = encoder.Build(target.src, target.dst);
      stats_.data_bytes_sent += bytes.size();
      ++stats_.data_forwarded_tree;
      sim_->SendDatagram(self_, target.vif, target.dst, std::move(bytes));
    }
  }

  // Member LANs share one buffer — the native one when the bytes are
  // identical (native arrival in a native domain: both are the already-
  // decremented datagram verbatim). The origin-LAN skip depends on the
  // packet's source address and stays per-packet.
  const bool force_ttl_one = cbt != nullptr || !config_.native_mode;
  netsim::PacketRef member_ref;
  std::size_t member_size = 0;
  for (const VifIndex v : decision.member_vifs) {
    if (SubnetContains(v, inner_ip.src)) continue;  // origin LAN saw it
    if (!member_ref.valid()) {
      member_size = inner_datagram.size();
      if (!force_ttl_one && native_ref.valid()) {
        member_ref = native_ref;
      } else if (force_ttl_one) {
        member_ref = MakeTtlPatchedPacket(inner_datagram, 1);
      } else if (prebuilt != nullptr) {
        member_ref = *prebuilt;
      } else {
        member_ref = sim_->MakePacket(inner_datagram);
      }
    }
    stats_.data_bytes_sent += member_size;
    ++stats_.data_delivered_lan;
    if (cbt != nullptr) ++stats_.data_decapsulated;
    sim_->SendDatagramRef(self_, v, entry.group, member_ref);
  }
}

netsim::PacketRef CbtRouter::MakeTtlPatchedPacket(
    std::span<const std::uint8_t> datagram, std::uint8_t ttl) {
  // Same bytes packet::WithTtl would produce, without the vector detour:
  // one arena copy, then the header patched in place.
  netsim::PacketRef ref = sim_->MakePacket(datagram);
  PatchTtlBytes(sim_->MutablePacket(ref), ttl);
  return ref;
}

bool CbtRouter::FlowCacheCoherent() const {
  bool coherent = true;
  const std::uint64_t epoch = DataplaneEpoch();
  flow_cache_.ForEachValidSlot([&](const FlowSlot& slot) {
    const FibEntry* entry = fib_.Find(slot.key.group);
    if (entry == nullptr) return;  // lookup precedes any hit; can't serve
    if (slot.table_generation != fib_.table_generation() ||
        slot.entry_generation != entry->generation || slot.epoch != epoch) {
      return;  // would be re-resolved, not served
    }
    if (!(BuildFlowDecision(*entry, slot.key) == slot.decision)) {
      coherent = false;
    }
  });
  return coherent;
}

void CbtRouter::ForwardAlongTreeSlow(
    VifIndex arrival_vif, Ipv4Address arrival_src, const FibEntry& entry,
    const packet::Ipv4Header& inner_ip,
    std::span<const std::uint8_t> inner_datagram,
    const packet::CbtDataHeader* cbt, const packet::CbtDataHeader& hdr) {
  // Collect outputs per interface mode (section 5.2 mixed operation):
  // native interfaces get one IP multicast each — shared by parent,
  // children and members on that LAN (section 4); CBT interfaces get
  // per-neighbour encapsulated unicasts, or a single CBT multicast when
  // several children sit behind one interface (section 5).
  SmallVec<VifIndex, 8> native_tree_vifs;
  const auto add_native = [&](VifIndex v) {
    if (v != arrival_vif &&
        std::find(native_tree_vifs.begin(), native_tree_vifs.end(), v) ==
            native_tree_vifs.end()) {
      native_tree_vifs.push_back(v);
    }
  };
  struct CbtTarget {
    VifIndex vif;
    Ipv4Address dst;
  };
  SmallVec<CbtTarget, 8> cbt_targets;

  if (entry.HasParent() && !(entry.parent_vif == arrival_vif &&
                             entry.parent_address == arrival_src)) {
    if (EffectiveMode(entry.parent_vif) == VifMode::kNative) {
      add_native(entry.parent_vif);
    } else {
      cbt_targets.push_back({entry.parent_vif, entry.parent_address});
    }
  }
  entry.ForEachChildVif([&](VifIndex v) {
    if (EffectiveMode(v) == VifMode::kNative) {
      add_native(v);
      return;
    }
    // Per-vif fan-out without materialising a child list: skip the
    // neighbour the packet came from, remember a sole survivor for a
    // unicast, fall back to the group address when several remain.
    std::size_t kid_count = 0;
    Ipv4Address sole_kid;
    entry.ForEachChildOnVif(v, [&](const ChildEntry& c) {
      if (v == arrival_vif && c.address == arrival_src) return;
      sole_kid = c.address;
      ++kid_count;
    });
    if (kid_count == 0) return;
    cbt_targets.push_back({v, kid_count == 1 ? sole_kid : entry.group});
  });

  for (const VifIndex v : native_tree_vifs) {
    std::vector<std::uint8_t> bytes =
        cbt != nullptr
            ? packet::WithTtl(inner_datagram, hdr.ip_ttl)
            : std::vector<std::uint8_t>(inner_datagram.begin(),
                                        inner_datagram.end());
    stats_.data_bytes_sent += bytes.size();
    ++stats_.data_forwarded_tree;
    sim_->SendDatagram(self_, v, entry.group, std::move(bytes));
  }
  if (!cbt_targets.empty() && cbt == nullptr) ++stats_.data_encapsulated;
  for (const CbtTarget& target : cbt_targets) {
    auto bytes = packet::BuildCbtModeDatagram(VifAddress(target.vif),
                                              target.dst, hdr,
                                              inner_datagram);
    stats_.data_bytes_sent += bytes.size();
    ++stats_.data_forwarded_tree;
    sim_->SendDatagram(self_, target.vif, target.dst, std::move(bytes));
  }

  // Member LANs: always native IP multicast. In CBT-mode operation the
  // inner TTL "is set to one before forwarding" (section 5); in a native
  // domain the already-decremented datagram goes out as-is. LANs covered
  // by a native tree transmission above already carried the packet.
  const bool force_ttl_one = cbt != nullptr || !config_.native_mode;
  for (const VifIndex v : igmp_.MemberVifs(entry.group)) {
    if (!IsSubnetDr(entry.group, v)) continue;
    if (SubnetContains(v, inner_ip.src)) continue;  // origin LAN saw it
    if (cbt == nullptr && v == arrival_vif) continue;  // already on wire
    if (std::find(native_tree_vifs.begin(), native_tree_vifs.end(), v) !=
        native_tree_vifs.end()) {
      continue;
    }
    std::vector<std::uint8_t> bytes =
        force_ttl_one ? packet::WithTtl(inner_datagram, 1)
                      : std::vector<std::uint8_t>(inner_datagram.begin(),
                                                  inner_datagram.end());
    stats_.data_bytes_sent += bytes.size();
    ++stats_.data_delivered_lan;
    if (cbt != nullptr) ++stats_.data_decapsulated;
    sim_->SendDatagram(self_, v, entry.group, std::move(bytes));
  }
}

void CbtRouter::RelayNonMemberData(VifIndex /*vif*/,
                                   const packet::Ipv4Header& ip,
                                   std::span<const std::uint8_t> datagram) {
  const std::vector<Ipv4Address> cores = directory_->CoresFor(ip.dst);
  if (cores.empty()) {
    ++stats_.data_dropped_no_state;
    return;
  }
  // Section 5.1 sends toward "the" core; with a k-core partition any
  // listed core reaches the whole forest (the backbone bridges them), so
  // inject at the nearest one — that is the traffic-concentration win of
  // multi-core placement. Single-core (or partition-less) groups keep the
  // historical primary-core target.
  Ipv4Address target = cores.front();
  if (cores.size() > 1 && directory_->HasAssignments(ip.dst)) {
    double best = std::numeric_limits<double>::infinity();
    for (const Ipv4Address& c : cores) {
      const auto r = routes_->Lookup(self_, c);
      if (r && r->vif != kInvalidVif && r->cost < best) {
        best = r->cost;
        target = c;
      }
    }
  }
  const auto route = ResolveToward(target);
  if (!route || route->vif == kInvalidVif) {
    ++stats_.data_dropped_no_state;
    return;
  }
  packet::CbtDataHeader hdr;
  hdr.group = ip.dst;
  hdr.core = target;
  hdr.origin = ip.src;
  hdr.ip_ttl = ip.ttl;
  hdr.on_tree = false;  // flips to 0xff at the first on-tree router
  auto bytes = packet::BuildCbtModeDatagram(VifAddress(route->vif), target,
                                            hdr, datagram);
  stats_.data_bytes_sent += bytes.size();
  ++stats_.data_encapsulated;
  ++stats_.data_nonmember_relayed;
  sim_->SendDatagram(self_, route->vif, route->next_hop, std::move(bytes));
}

void CbtRouter::ForwardUnicast(const packet::Ipv4Header& ip,
                               std::span<const std::uint8_t> datagram) {
  const auto route = routes_->Lookup(self_, ip.dst);
  if (!route || route->vif == kInvalidVif) return;
  const Ipv4Address link_dst =
      route->next_hop == ip.dst || route->hop_count == 0 ? ip.dst
                                                         : route->next_hop;
  if (config_.dataplane == DataplaneMode::kFast) {
    // Relay transit hops are on the data path too: same zero-copy (or
    // at worst one-copy) TTL decrement as HandleNativeData.
    if (ip.ttl <= 1) {
      ++stats_.data_dropped_ttl;
      return;
    }
    const auto ttl = static_cast<std::uint8_t>(ip.ttl - 1);
    if (const netsim::PacketRef* arrival =
            sim_->PatchableDeliveryRef(datagram)) {
      PatchTtlBytes(sim_->MutablePacket(*arrival), ttl);
      sim_->SendDatagramRef(self_, route->vif, link_dst, *arrival);
      return;
    }
    const netsim::PacketRef ref = MakeTtlPatchedPacket(datagram, ttl);
    sim_->SendDatagramRef(self_, route->vif, link_dst, ref);
    return;
  }
  const auto forwarded = packet::WithDecrementedTtl(datagram);
  if (!forwarded) {
    ++stats_.data_dropped_ttl;
    return;
  }
  sim_->SendDatagram(self_, route->vif, link_dst, *forwarded);
}

// ---------------------------------------------------------------------------
// Helpers.
// ---------------------------------------------------------------------------

void CbtRouter::SendControl(VifIndex vif, Ipv4Address link_dst,
                            Ipv4Address ip_dst, const ControlPacket& pkt) {
  auto bytes = packet::BuildControlDatagram(VifAddress(vif), ip_dst, pkt);
  stats_.control_bytes_sent += bytes.size();
  sim_->SendDatagram(self_, vif, link_dst, std::move(bytes));
}

void CbtRouter::SendIgmp(VifIndex vif, Ipv4Address dst,
                         const IgmpMessage& msg) {
  sim_->SendDatagram(self_, vif, dst,
                     packet::BuildIgmpDatagram(VifAddress(vif), dst, msg));
}

bool CbtRouter::IsGdr(Ipv4Address group, VifIndex vif) const {
  return gdr_.contains({group, VifSubnet(vif)});
}

bool CbtRouter::IsSubnetDr(Ipv4Address group, VifIndex vif) const {
  if (IsGdr(group, vif)) return true;
  if (proxied_groups_.contains(group)) return false;  // a G-DR covers us
  return igmp_.IsQuerier(vif);
}

bool CbtRouter::OwnsAddress(Ipv4Address addr) const {
  for (const netsim::Interface& iface : sim_->node(self_).interfaces) {
    if (iface.address == addr) return true;
  }
  return false;
}

Ipv4Address CbtRouter::VifAddress(VifIndex vif) const {
  return sim_->interface(self_, vif).address;
}

SubnetId CbtRouter::VifSubnet(VifIndex vif) const {
  return sim_->interface(self_, vif).subnet;
}

bool CbtRouter::SubnetContains(VifIndex vif, Ipv4Address addr) const {
  return sim_->subnet(VifSubnet(vif)).address.Contains(addr);
}

}  // namespace cbt::core
