// Heavy-churn membership scenario generation (cbt::scenario).
//
// Produces a deterministic, seeded schedule of anonymous membership
// events — (time, LAN index, group index, join|leave) — from
// configurable stochastic processes:
//
//  * Poisson member arrivals with exponential holding times (the classic
//    open churn model of Cho & Breen's dynamic-multicast analysis);
//  * zipf group popularity (a few hot groups absorb most members);
//  * flash crowds: a burst of joins to one group inside a short window;
//  * correlated leave storms: a fraction of one group's current members
//    all leave inside a short window (the "end of the broadcast" event
//    that stresses leave-latency and tree teardown).
//
// Events are *anonymous*: a leave means "one member of (lan, group)
// departs" and executors retire the oldest member (FIFO). That keeps the
// schedule equally applicable to the per-host reference model (one
// HostAgent per member, joined in event order) and the aggregate model
// (igmp::MembershipAggregate counts), which is exactly how the
// differential tests pin the two models equivalent.
//
// Generation never touches a Simulator: it draws from its own seeded Rng
// so the same (params, lan_count, seed) triple yields the identical
// schedule in every process, engine, and shard configuration.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "netsim/simulator.h"

namespace cbt::scenario {

/// Samples 0-based ranks with P(k) proportional to 1/(k+1)^s via a
/// precomputed CDF and binary search. s = 0 is uniform; s ~ 1 is the
/// classic zipf popularity skew.
class ZipfSampler {
 public:
  ZipfSampler(std::uint32_t n, double s);
  std::uint32_t Sample(Rng& rng) const;

 private:
  std::vector<double> cdf_;
};

struct FlashCrowd {
  SimTime at = 0;
  std::uint32_t group = 0;       // group index the crowd floods into
  std::uint64_t members = 0;     // joins injected
  SimDuration window = kSecond;  // joins spread uniformly over [at, at+window]
};

struct LeaveStorm {
  SimTime at = 0;
  std::uint32_t group = 0;
  double fraction = 1.0;         // of the group's members active at `at`
  SimDuration window = kSecond;  // departures spread over [at, at+window]
};

struct ChurnParams {
  std::uint32_t groups = 8;
  /// Zipf popularity exponent across groups (0 = uniform).
  double zipf_s = 1.0;
  /// Members already present at t = 0 (steady-state warm start); their
  /// residual holding times are exponential, as memorylessness demands.
  std::uint64_t initial_members = 0;
  /// Poisson arrival rate of new members, per simulated second.
  double arrivals_per_second = 0.0;
  /// Mean of the exponential holding time.
  SimDuration mean_holding = 60 * kSecond;
  /// Events beyond this horizon are not generated.
  SimDuration duration = 300 * kSecond;
  std::vector<FlashCrowd> flashes;
  std::vector<LeaveStorm> storms;
};

struct MembershipEvent {
  SimTime at = 0;
  std::uint32_t lan = 0;    // index into the executor's LAN list
  std::uint32_t group = 0;  // index into the executor's group list
  bool join = true;
};

class ChurnSchedule {
 public:
  /// Deterministically expands `params` over `lan_count` member LANs.
  static ChurnSchedule Generate(const ChurnParams& params,
                                std::uint32_t lan_count, std::uint64_t seed);

  const std::vector<MembershipEvent>& events() const { return events_; }
  std::uint64_t join_count() const { return join_count_; }
  std::uint64_t leave_count() const { return leave_count_; }
  /// Maximum concurrent membership over the whole schedule (plus the
  /// warm-start members still present).
  std::uint64_t peak_members() const { return peak_members_; }

 private:
  std::vector<MembershipEvent> events_;
  std::uint64_t join_count_ = 0;
  std::uint64_t leave_count_ = 0;
  std::uint64_t peak_members_ = 0;
};

/// Drives a schedule through a simulation without enqueueing one event
/// per membership change up front: only the next batch is ever pending.
/// `apply` runs at each event's timestamp, in schedule order.
class ChurnRunner {
 public:
  ChurnRunner(netsim::Simulator& sim, const ChurnSchedule& schedule,
              std::function<void(const MembershipEvent&)> apply)
      : sim_(&sim), events_(&schedule.events()), apply_(std::move(apply)) {}

  /// Schedules the first pending event; later batches chain themselves.
  void Start() { Arm(); }

  std::size_t applied() const { return next_; }
  bool done() const { return next_ >= events_->size(); }

 private:
  void Arm();
  void Pump();

  netsim::Simulator* sim_;
  const std::vector<MembershipEvent>* events_;
  std::function<void(const MembershipEvent&)> apply_;
  std::size_t next_ = 0;
};

}  // namespace cbt::scenario
