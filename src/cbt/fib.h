// The CBT Forwarding Information Base (spec section 5, Figure 4).
//
// One entry per group describes the router's position on that group's
// shared tree: the parent (towards the group's core backbone) and the set
// of children, each recorded as <address, vif> exactly as in Figure 4.
// "CBT routers create FIB entries whenever they send or receive a
// JOIN_ACK (with the exception of a proxy-ack)."
#pragma once

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "common/small_vec.h"
#include "common/types.h"

namespace cbt::core {

struct ChildEntry {
  Ipv4Address address;
  VifIndex vif = kInvalidVif;
  /// Last time this child proved liveness (join or CBT-ECHO-REQUEST);
  /// parents expire children after CHILD-ASSERT-EXPIRE-TIME.
  SimTime last_heard = 0;
};

struct FibEntry {
  Ipv4Address group;

  /// Parent link; unset (parent_vif == kInvalidVif) at the tree root
  /// (the primary core, or a reconnecting router between parents).
  Ipv4Address parent_address;
  VifIndex parent_vif = kInvalidVif;
  /// Last CBT-ECHO-REPLY (or establishment) time from the parent.
  SimTime last_parent_reply = 0;

  /// Dataplane invalidation counter: bumped by every mutation that can
  /// change a forwarding decision for this group (parent re-pointing,
  /// child set edits, core list changes). The per-router flow cache
  /// stores the generation it resolved against and treats any mismatch
  /// as a miss, so correctness never depends on an explicit flush.
  /// AddChild/RemoveChild bump it themselves; call Touch() after any
  /// direct field edit (liveness refreshes like last_heard /
  /// last_parent_reply do not affect forwarding and need no bump).
  std::uint64_t generation = 0;
  void Touch() { ++generation; }

  /// Child set, inline up to 4 entries — the common CBT fan-out — so the
  /// per-packet forwarding path stays allocation-free.
  SmallVec<ChildEntry, 4> children;

  /// Ordered core list carried by joins/acks; cores[0] is the primary.
  std::vector<Ipv4Address> cores;
  /// "Actual core affiliation" carried in join-acks: the core whose
  /// subtree this branch hangs from. Equals cores[0] on a single-core
  /// tree; under a k-core partition it names the assigned core, so a
  /// downstream router can tell which of the k subtrees it landed in.
  /// Unspecified until the first ack (or anchor) establishes it.
  Ipv4Address affiliation;
  /// This router is itself a core for the group (learned from receiving a
  /// join that targets it — section 6.2).
  bool is_core = false;
  bool is_primary_core = false;

  bool HasParent() const { return parent_vif != kInvalidVif; }

  ChildEntry* FindChild(Ipv4Address address);
  const ChildEntry* FindChild(Ipv4Address address) const;

  /// Adds or refreshes a child (spec's "No. of children" grows).
  void AddChild(Ipv4Address address, VifIndex vif, SimTime now);
  bool RemoveChild(Ipv4Address address);

  bool HasChildOnVif(VifIndex vif) const;

  /// Distinct vifs that have at least one child.
  /// Allocates; the data plane uses ForEachChildVif instead.
  std::vector<VifIndex> ChildVifs() const;
  /// Children reachable via a particular vif.
  /// Allocates; the data plane uses ForEachChildOnVif instead.
  std::vector<const ChildEntry*> ChildrenOnVif(VifIndex vif) const;

  /// Visits each distinct child vif once, in first-seen (child insertion)
  /// order — the same order ChildVifs() reports — without allocating.
  template <typename Fn>
  void ForEachChildVif(Fn&& fn) const {
    for (std::size_t i = 0; i < children.size(); ++i) {
      const VifIndex v = children[i].vif;
      bool seen = false;
      for (std::size_t j = 0; j < i && !seen; ++j) {
        seen = children[j].vif == v;
      }
      if (!seen) fn(v);
    }
  }

  /// Visits every child reachable via `vif`, in insertion order, without
  /// allocating.
  template <typename Fn>
  void ForEachChildOnVif(VifIndex vif, Fn&& fn) const {
    for (const ChildEntry& c : children) {
      if (c.vif == vif) fn(c);
    }
  }

  /// Number of children reachable via `vif`.
  std::size_t ChildCountOnVif(VifIndex vif) const;

  /// A vif is "on-tree" if it is the parent vif or hosts a child
  /// (section 7's valid-interface check for data packets).
  bool IsTreeVif(VifIndex vif) const {
    return (HasParent() && vif == parent_vif) || HasChildOnVif(vif);
  }
};

/// Group-indexed FIB. In a real router this is mirrored into the kernel
/// (section 3); here it is the single source of truth.
///
/// Storage is a flat vector sorted by group: lookups binary-search, and
/// iteration walks contiguous memory in the same group order the previous
/// std::map exposed (determinism preserved byte-for-byte). Entry
/// pointers/references are invalidated by Create/Remove of *any* group —
/// the same contract callers already honoured for erasure under std::map.
class Fib {
 public:
  FibEntry* Find(Ipv4Address group);
  const FibEntry* Find(Ipv4Address group) const;

  /// Creates an (empty) entry; returns the existing one if present.
  FibEntry& Create(Ipv4Address group);

  bool Remove(Ipv4Address group);

  /// Bumped on every Create/Remove — the events that invalidate entry
  /// pointers AND can recycle a group's per-entry generation (a removed
  /// and re-created entry restarts at generation 0). A flow-cache hit
  /// requires BOTH the table generation and the entry generation to
  /// match, which makes the pair alias-free: any teardown/re-install
  /// sequence bumps the table side even if the entry side repeats.
  std::uint64_t table_generation() const { return table_generation_; }

  std::size_t size() const { return entries_.size(); }

  /// Total state footprint: entries plus child slots — the quantity the
  /// state-scaling experiment (E1) counts.
  std::size_t StateUnits() const;

  auto begin() { return entries_.begin(); }
  auto end() { return entries_.end(); }
  auto begin() const { return entries_.begin(); }
  auto end() const { return entries_.end(); }

 private:
  std::vector<std::pair<Ipv4Address, FibEntry>> entries_;  // sorted by group
  std::uint64_t table_generation_ = 0;
};

}  // namespace cbt::core
