#include "cbt/host.h"

#include "common/logging.h"

namespace cbt::core {

using packet::IgmpMessage;
using packet::IgmpType;
using packet::IpProtocol;

HostAgent::HostAgent(netsim::Simulator& sim, NodeId self,
                     const GroupDirectory* directory)
    : sim_(&sim),
      self_(self),
      directory_(directory),
      address_(sim.PrimaryAddress(self)) {}

void HostAgent::JoinGroup(Ipv4Address group) {
  std::vector<Ipv4Address> cores =
      directory_ != nullptr ? directory_->CoresFor(group)
                            : std::vector<Ipv4Address>{};
  // Under a k-core partition the mapping advertisement also names which
  // core this host's LAN should target (index 0 otherwise).
  std::size_t target_index = 0;
  if (directory_ != nullptr && !sim_->node(self_).interfaces.empty()) {
    target_index = directory_->AssignedIndex(
        group, sim_->node(self_).interfaces.front().subnet);
  }
  JoinGroupWithCores(group, std::move(cores), target_index);
}

void HostAgent::JoinGroupWithCores(Ipv4Address group,
                                   std::vector<Ipv4Address> cores,
                                   std::size_t target_index) {
  // Tests and benches call this from outside any event; under a shard
  // backend the scope pins the reports, timers, and RNG draws to this
  // host's region (no-op otherwise).
  netsim::AffinityScope affinity(*sim_, self_);
  auto& membership = groups_[group];
  if (membership == nullptr) membership = std::make_unique<Membership>();
  membership->cores = std::move(cores);
  membership->target_index =
      target_index < membership->cores.size() ? target_index : 0;
  membership->response_timer.BindTo(*sim_);
  // Section 2.5: "Host A generates an IGMP RP/Core-Report and an IGMP
  // group membership report when the multicast application is invoked";
  // send unsolicited twice for robustness.
  SendReports(group);
  sim_->Schedule(kSecond, [this, group] {
    if (groups_.contains(group)) SendReports(group);
  });
}

void HostAgent::LeaveGroup(Ipv4Address group) {
  netsim::AffinityScope affinity(*sim_, self_);
  if (groups_.erase(group) == 0) return;
  confirmed_.erase(group);
  // IGMPv1 hosts have no leave message (section 2.4): the router's
  // membership state simply times out.
  if (version_ == IgmpHostVersion::kV1) return;
  IgmpMessage leave;
  leave.type = IgmpType::kLeaveGroup;
  leave.group = group;
  Send(kAllRoutersGroup, leave);
}

void HostAgent::SendToGroup(Ipv4Address group,
                            std::span<const std::uint8_t> payload,
                            std::uint8_t ttl) {
  netsim::AffinityScope affinity(*sim_, self_);
  sim_->SendDatagram(self_, 0, group,
                     packet::BuildAppDatagram(address_, group, payload, ttl));
}

std::uint64_t HostAgent::ReceivedCount(Ipv4Address group) const {
  std::uint64_t n = 0;
  for (const Received& r : received_) {
    if (r.group == group) ++n;
  }
  return n;
}

void HostAgent::OnDatagram(VifIndex /*vif*/, Ipv4Address /*link_src*/,
                           Ipv4Address /*link_dst*/,
                           std::span<const std::uint8_t> datagram) {
  const auto parsed = packet::ParseDatagram(datagram);
  if (!parsed) return;
  const packet::Ipv4Header& ip = parsed->ip;

  switch (ip.protocol) {
    case IpProtocol::kIgmp: {
      if (const auto msg = packet::ExtractIgmp(*parsed)) HandleIgmp(*msg);
      return;
    }
    case IpProtocol::kCbt:
    case IpProtocol::kUdp:
      // "The IP module of end-systems ... will discard these multicasts
      // since the CBT payload type is not recognizable" (section 5); CBT
      // control is likewise router business.
      return;
    default: {
      if (!ip.dst.IsMulticast() || !groups_.contains(ip.dst)) return;
      Received r{ip.dst, ip.src, sim_->Now(), parsed->payload.size()};
      if (parsed->payload.size() >= 4) {
        const auto& p = parsed->payload;
        r.payload_head = (std::uint32_t{p[0]} << 24) |
                         (std::uint32_t{p[1]} << 16) |
                         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
      }
      received_.push_back(r);
      if (on_data) on_data(r);
      return;
    }
  }
}

void HostAgent::HandleIgmp(const IgmpMessage& msg) {
  switch (msg.type) {
    case IgmpType::kMembershipQuery: {
      const SimDuration max_delay =
          msg.code != 0 ? msg.code * (kSecond / 10) : kSecond;
      if (msg.group.IsUnspecified()) {
        for (const auto& [group, membership] : groups_) {
          ScheduleReport(group, max_delay);
        }
      } else if (groups_.contains(msg.group)) {
        ScheduleReport(msg.group, max_delay);
      }
      return;
    }
    case IgmpType::kMembershipReport: {
      // Report suppression: someone else answered for this group.
      if (const auto it = groups_.find(msg.group); it != groups_.end()) {
        it->second->response_timer.Cancel();
      }
      return;
    }
    case IgmpType::kJoinConfirmation: {
      if (groups_.contains(msg.group)) confirmed_.insert(msg.group);
      return;
    }
    default:
      return;
  }
}

void HostAgent::ScheduleReport(Ipv4Address group, SimDuration max_delay) {
  const auto it = groups_.find(group);
  if (it == groups_.end()) return;
  Membership& membership = *it->second;
  if (membership.response_timer.IsPending()) return;
  const SimDuration delay = static_cast<SimDuration>(
      sim_->rng().NextBelow(static_cast<std::uint64_t>(max_delay) + 1));
  membership.response_timer.Schedule(delay,
                                     [this, group] { SendReports(group); });
}

void HostAgent::SendReports(Ipv4Address group) {
  const auto it = groups_.find(group);
  if (it == groups_.end()) return;
  Membership& membership = *it->second;

  // RP/Core-Report first so the D-DR has the <core,group> mapping when the
  // membership report triggers the join (section 2.5). Only IGMPv3 hosts
  // can send it; v1/v2 hosts rely on the D-DR's external mapping
  // (section 2.4).
  if (version_ == IgmpHostVersion::kV3 && !membership.cores.empty()) {
    IgmpMessage core_report;
    core_report.type = IgmpType::kRpCoreReport;
    core_report.code = packet::kCoreReportCodeCbt;
    core_report.group = group;
    core_report.target_core_index =
        static_cast<std::uint8_t>(membership.target_index);
    core_report.cores = membership.cores;
    Send(group, core_report);
  }

  IgmpMessage report;
  report.type = IgmpType::kMembershipReport;
  report.group = group;
  Send(group, report);
}

void HostAgent::Send(Ipv4Address dst, const IgmpMessage& msg) {
  sim_->SendDatagram(self_, 0, dst,
                     packet::BuildIgmpDatagram(address_, dst, msg));
}

}  // namespace cbt::core
