// An IGMP end-system: joins/leaves groups, answers queries (with report
// suppression), issues the RP/Core-Report of the spec's appendix, and
// sends/receives multicast application data in traditional IP style —
// "system host changes are not required for CBT" (section 5), so this host
// knows nothing about the CBT protocol itself.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "cbt/group_directory.h"
#include "netsim/simulator.h"
#include "netsim/timer.h"
#include "packet/encap.h"

namespace cbt::core {

/// Which IGMP generation the host speaks (section 2.4 backward
/// compatibility): v1 hosts send no leaves and no RP/Core-Reports, v2
/// hosts leave but cannot carry core lists, v3 is the full appendix
/// behaviour. For v1/v2 the D-DR must learn <core,group> "by means of
/// network management" — the GroupDirectory in this implementation.
enum class IgmpHostVersion { kV1 = 1, kV2 = 2, kV3 = 3 };

class HostAgent : public netsim::NetworkAgent {
 public:
  struct Received {
    Ipv4Address group;
    Ipv4Address src;
    SimTime time = 0;
    std::size_t bytes = 0;
    /// First four payload bytes, big-endian (0 when shorter): lets
    /// sequence-stamped probes check delivery continuity without
    /// retaining whole payloads.
    std::uint32_t payload_head = 0;
  };

  /// `directory` supplies <core,group> mappings for RP/Core-Reports; may
  /// be null for hosts that only join with explicit core lists.
  HostAgent(netsim::Simulator& sim, NodeId self,
            const GroupDirectory* directory = nullptr);

  void OnDatagram(VifIndex vif, Ipv4Address link_src, Ipv4Address link_dst,
                  std::span<const std::uint8_t> datagram) override;

  /// Joins using the directory's core list for the group.
  void JoinGroup(Ipv4Address group);

  /// Joins with an explicit ordered core list ("the joining host learns of
  /// the candidate cores", section 2.2). target_index selects the core the
  /// D-DR should aim its join at.
  void JoinGroupWithCores(Ipv4Address group, std::vector<Ipv4Address> cores,
                          std::size_t target_index = 0);

  /// IGMP HOST-MEMBERSHIP-LEAVE to 224.0.0.2 (section 2.7).
  void LeaveGroup(Ipv4Address group);

  /// Sends application data to the group (membership not required —
  /// non-member sending is a CBT feature under test).
  void SendToGroup(Ipv4Address group, std::span<const std::uint8_t> payload,
                   std::uint8_t ttl = packet::kDefaultTtl);

  bool IsMember(Ipv4Address group) const { return groups_.contains(group); }

  /// True once the D-DR's join-confirmation for the group has been seen
  /// (the -03 section 2.5 notification) — "the application can now send".
  bool JoinConfirmed(Ipv4Address group) const {
    return confirmed_.contains(group);
  }
  const std::vector<Received>& received() const { return received_; }
  std::uint64_t ReceivedCount(Ipv4Address group) const;

  Ipv4Address address() const { return address_; }
  NodeId id() const { return self_; }

  /// Invoked on every delivered data packet (after recording).
  std::function<void(const Received&)> on_data;

  void set_igmp_version(IgmpHostVersion version) { version_ = version; }
  IgmpHostVersion igmp_version() const { return version_; }

 private:
  struct Membership {
    std::vector<Ipv4Address> cores;
    std::size_t target_index = 0;
    netsim::Timer response_timer;  // pending query response (suppressible)
  };

  void HandleIgmp(const packet::IgmpMessage& msg);
  void ScheduleReport(Ipv4Address group, SimDuration max_delay);
  void SendReports(Ipv4Address group);
  void Send(Ipv4Address dst, const packet::IgmpMessage& msg);

  netsim::Simulator* sim_;
  NodeId self_;
  const GroupDirectory* directory_;
  Ipv4Address address_;
  IgmpHostVersion version_ = IgmpHostVersion::kV3;
  std::set<Ipv4Address> confirmed_;
  std::map<Ipv4Address, std::unique_ptr<Membership>> groups_;
  std::vector<Received> received_;
};

}  // namespace cbt::core
