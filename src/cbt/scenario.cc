#include "cbt/scenario.h"

#include <charconv>
#include <map>
#include <ostream>
#include <sstream>

namespace cbt::core {
namespace {

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string token;
  while (is >> token) {
    if (token[0] == '#') break;  // trailing comment
    out.push_back(token);
  }
  return out;
}

std::optional<SimTime> ParseTime(const std::string& token) {
  std::size_t suffix = token.size();
  SimDuration unit = kSecond;
  if (token.size() >= 2 && token.ends_with("ms")) {
    unit = kMillisecond;
    suffix = token.size() - 2;
  } else if (token.ends_with("s")) {
    suffix = token.size() - 1;
  }
  double value = 0;
  const auto* begin = token.data();
  const auto* end = token.data() + suffix;
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return static_cast<SimTime>(value * static_cast<double>(unit));
}

std::optional<std::uint64_t> ParseCount(const std::string& token) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    return std::nullopt;
  }
  return value;
}

}  // namespace

std::optional<Scenario> Scenario::Parse(const std::string& text,
                                        std::string* error) {
  Scenario scenario;
  std::istringstream lines(text);
  std::string line;
  int line_no = 0;
  const auto fail = [&](const std::string& message) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_no) + ": " + message;
    }
    return std::nullopt;
  };

  while (std::getline(lines, line)) {
    ++line_no;
    const std::vector<std::string> tok = Tokenize(line);
    if (tok.empty()) continue;

    if (tok[0] == "topology") {
      if (tok.size() < 2) return fail("topology needs a kind");
      std::string spec = tok[1];
      for (std::size_t i = 2; i < tok.size(); ++i) spec += " " + tok[i];
      scenario.topology_spec_ = spec;
      continue;
    }
    if (tok[0] == "config") {
      if (tok.size() != 3 || (tok[2] != "on" && tok[2] != "off")) {
        return fail("config <flag> on|off");
      }
      const bool on = tok[2] == "on";
      if (tok[1] == "native") {
        scenario.config_.native_mode = on;
      } else if (tok[1] == "proxy-ack") {
        scenario.config_.enable_proxy_ack = on;
      } else if (tok[1] == "echo-aggregate") {
        scenario.config_.aggregate_echo = on;
      } else {
        return fail("unknown config flag '" + tok[1] + "'");
      }
      continue;
    }
    if (tok[0] == "group") {
      if (tok.size() < 4) return fail("group <name> <addr> <core...>");
      GroupDecl decl;
      decl.name = tok[1];
      const auto addr = Ipv4Address::Parse(tok[2]);
      if (!addr || !addr->IsMulticast()) {
        return fail("'" + tok[2] + "' is not a multicast address");
      }
      decl.address = *addr;
      decl.core_routers.assign(tok.begin() + 3, tok.end());
      scenario.groups_.push_back(std::move(decl));
      continue;
    }
    if (tok[0] == "host") {
      if (tok.size() != 3) return fail("host <name> <router>");
      scenario.hosts_.push_back(HostDecl{tok[1], tok[2]});
      continue;
    }
    if (tok[0] == "run") {
      if (tok.size() != 2) return fail("run <time>");
      const auto t = ParseTime(tok[1]);
      if (!t) return fail("bad time '" + tok[1] + "'");
      scenario.run_until_ = *t;
      continue;
    }
    if (tok[0] == "at") {
      if (tok.size() < 3) return fail("at <time> <verb> ...");
      const auto t = ParseTime(tok[1]);
      if (!t) return fail("bad time '" + tok[1] + "'");
      Event ev;
      ev.at = *t;
      const std::string& verb = tok[2];
      const auto need = [&](std::size_t n) { return tok.size() == n; };
      if (verb == "join") {
        if (!need(6)) return fail("join <host> <router> <group>");
        ev.kind = Event::Kind::kJoin;
        ev.host = tok[3];
        ev.router = tok[4];
        ev.group = tok[5];
      } else if (verb == "leave") {
        if (!need(5)) return fail("leave <host> <group>");
        ev.kind = Event::Kind::kLeave;
        ev.host = tok[3];
        ev.group = tok[4];
      } else if (verb == "send") {
        if (!need(6)) return fail("send <host> <group> <bytes>");
        ev.kind = Event::Kind::kSend;
        ev.host = tok[3];
        ev.group = tok[4];
        const auto n = ParseCount(tok[5]);
        if (!n || *n == 0 || *n > 60000) return fail("bad payload size");
        ev.amount = *n;
      } else if (verb == "fail-node" || verb == "heal-node") {
        if (!need(4)) return fail(verb + " <router>");
        ev.kind = verb == "fail-node" ? Event::Kind::kFailNode
                                      : Event::Kind::kHealNode;
        ev.router = tok[3];
      } else if (verb == "fail-link" || verb == "heal-link") {
        if (!need(5)) return fail(verb + " <routerA> <routerB>");
        ev.kind = verb == "fail-link" ? Event::Kind::kFailLink
                                      : Event::Kind::kHealLink;
        ev.router = tok[3];
        ev.router2 = tok[4];
      } else if (verb == "expect-delivered") {
        if (!need(6)) return fail("expect-delivered <host> <group> <count>");
        ev.kind = Event::Kind::kExpectDelivered;
        ev.host = tok[3];
        ev.group = tok[4];
        const auto n = ParseCount(tok[5]);
        if (!n) return fail("bad count");
        ev.amount = *n;
      } else if (verb == "expect-on-tree") {
        if (!need(6) || (tok[5] != "yes" && tok[5] != "no")) {
          return fail("expect-on-tree <router> <group> yes|no");
        }
        ev.kind = Event::Kind::kExpectOnTree;
        ev.router = tok[3];
        ev.group = tok[4];
        ev.flag = tok[5] == "yes";
      } else {
        return fail("unknown verb '" + verb + "'");
      }
      scenario.events_.push_back(std::move(ev));
      continue;
    }
    return fail("unknown statement '" + tok[0] + "'");
  }

  if (scenario.topology_spec_.empty()) {
    line_no = 0;
    return fail("no 'topology' statement");
  }
  if (scenario.groups_.empty()) {
    line_no = 0;
    return fail("no 'group' statement");
  }
  if (scenario.run_until_ == 0) {
    SimTime latest = 0;
    for (const Event& ev : scenario.events_) latest = std::max(latest, ev.at);
    scenario.run_until_ = latest + 30 * kSecond;
  }
  return scenario;
}

Scenario::RunResult Scenario::Run(std::ostream* trace) const {
  netsim::Simulator sim(1);

  // --- Topology. ---
  std::istringstream spec(topology_spec_);
  std::string kind;
  spec >> kind;
  netsim::Topology topo;
  if (kind == "line") {
    int n = 0;
    spec >> n;
    topo = netsim::MakeLine(sim, std::max(n, 1));
  } else if (kind == "star") {
    int n = 0;
    spec >> n;
    topo = netsim::MakeStar(sim, std::max(n, 1));
  } else if (kind == "grid") {
    int w = 0, h = 0;
    spec >> w >> h;
    topo = netsim::MakeGrid(sim, std::max(w, 1), std::max(h, 1));
  } else if (kind == "tree") {
    int depth = 0;
    spec >> depth;
    topo = netsim::MakeBinaryTree(sim, std::max(depth, 1));
  } else if (kind == "waxman") {
    netsim::WaxmanParams params;
    spec >> params.n >> params.seed;
    params.n = std::max(params.n, 2);
    topo = netsim::MakeWaxman(sim, params);
  } else if (kind == "figure5") {
    topo = netsim::MakeFigure5Loop(sim);
  } else {
    topo = netsim::MakeFigure1(sim);
  }

  netsim::Topology& topo_ref = topo;
  CbtDomain domain(sim, topo_ref, config_);

  // --- Groups. ---
  std::map<std::string, Ipv4Address> group_addr;
  for (const GroupDecl& decl : groups_) {
    std::vector<NodeId> cores;
    for (const std::string& name : decl.core_routers) {
      cores.push_back(topo_ref.node(name));
    }
    domain.RegisterGroup(decl.address, cores);
    group_addr[decl.name] = decl.address;
  }

  domain.Start();

  // --- Helpers resolving names lazily at event time. ---
  std::map<std::string, HostAgent*> hosts;
  const auto host_for = [&](const std::string& name,
                            const std::string& router) -> HostAgent& {
    if (const auto it = hosts.find(name); it != hosts.end()) {
      return *it->second;
    }
    // Figure-1 letter hosts already exist in the topology.
    if (topo_ref.nodes.contains(name) &&
        !sim.node(topo_ref.node(name)).is_router) {
      HostAgent& h = domain.host(name);
      hosts[name] = &h;
      return h;
    }
    SubnetId lan;
    if (!router.empty()) {
      const NodeId r = topo_ref.node(router);
      // Prefer the router's stub LAN; otherwise its first LAN subnet.
      bool found = false;
      for (std::size_t i = 0; i < topo_ref.routers.size(); ++i) {
        if (topo_ref.routers[i] == r && i < topo_ref.router_lans.size()) {
          lan = topo_ref.router_lans[i];
          found = true;
        }
      }
      if (!found) {
        for (const auto& iface : sim.node(r).interfaces) {
          if (sim.subnet(iface.subnet).multi_access) {
            lan = iface.subnet;
            found = true;
            break;
          }
        }
      }
    }
    if (!lan.IsValid() && !topo_ref.router_lans.empty()) {
      lan = topo_ref.router_lans.front();  // orphan reference: first LAN
    }
    HostAgent& h = domain.AddHost(lan, name);
    hosts[name] = &h;
    return h;
  };
  const auto link_between = [&](const std::string& a, const std::string& b) {
    const NodeId na = topo_ref.node(a);
    const NodeId nb = topo_ref.node(b);
    for (const auto& iface : sim.node(na).interfaces) {
      for (const auto& [peer, pv] : sim.subnet(iface.subnet).attachments) {
        if (peer == nb) return iface.subnet;
      }
    }
    return SubnetId{};
  };

  // Pre-declared hosts.
  for (const HostDecl& decl : hosts_) {
    host_for(decl.name, decl.router);
  }

  RunResult result;
  const auto log = [&](const std::string& message) {
    if (trace != nullptr) {
      *trace << "t=" << FormatSimTime(sim.Now()) << "  " << message << "\n";
    }
  };

  // --- Schedule events. ---
  for (const Event& ev : events_) {
    sim.ScheduleAt(ev.at, [&, ev] {
      switch (ev.kind) {
        case Event::Kind::kJoin: {
          log(ev.host + " joins " + ev.group + " behind " + ev.router);
          host_for(ev.host, ev.router).JoinGroup(group_addr.at(ev.group));
          return;
        }
        case Event::Kind::kLeave:
          log(ev.host + " leaves " + ev.group);
          host_for(ev.host, "").LeaveGroup(group_addr.at(ev.group));
          return;
        case Event::Kind::kSend:
          log(ev.host + " sends " + std::to_string(ev.amount) + "B to " +
              ev.group);
          host_for(ev.host, "")
              .SendToGroup(group_addr.at(ev.group),
                           std::vector<std::uint8_t>(ev.amount, 0xDA));
          return;
        case Event::Kind::kFailNode:
          log("node " + ev.router + " fails");
          sim.SetNodeUp(topo_ref.node(ev.router), false);
          return;
        case Event::Kind::kHealNode:
          log("node " + ev.router + " heals");
          sim.SetNodeUp(topo_ref.node(ev.router), true);
          return;
        case Event::Kind::kFailLink:
        case Event::Kind::kHealLink: {
          const SubnetId link = link_between(ev.router, ev.router2);
          const bool up = ev.kind == Event::Kind::kHealLink;
          log("link " + ev.router + "-" + ev.router2 +
              (up ? " heals" : " fails"));
          if (link.IsValid()) sim.SetSubnetUp(link, up);
          return;
        }
        case Event::Kind::kExpectDelivered: {
          const auto count =
              host_for(ev.host, "").ReceivedCount(group_addr.at(ev.group));
          ExpectationResult res;
          res.description = ev.host + " delivered " + ev.group;
          res.passed = count == ev.amount;
          res.detail = "expected " + std::to_string(ev.amount) + ", got " +
                       std::to_string(count);
          log("expect-delivered: " + res.detail +
              (res.passed ? " [ok]" : " [FAIL]"));
          result.expectations.push_back(std::move(res));
          return;
        }
        case Event::Kind::kExpectOnTree: {
          const bool on_tree = domain.router(ev.router).IsOnTree(
              group_addr.at(ev.group));
          ExpectationResult res;
          res.description = ev.router + " on-tree for " + ev.group;
          res.passed = on_tree == ev.flag;
          res.detail = std::string("expected ") + (ev.flag ? "yes" : "no") +
                       ", got " + (on_tree ? "yes" : "no");
          log("expect-on-tree: " + res.detail +
              (res.passed ? " [ok]" : " [FAIL]"));
          result.expectations.push_back(std::move(res));
          return;
        }
      }
    });
  }

  sim.RunUntil(run_until_);
  result.end_time = sim.Now();
  return result;
}

}  // namespace cbt::core
