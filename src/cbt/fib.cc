#include "cbt/fib.h"

#include <algorithm>

namespace cbt::core {

ChildEntry* FibEntry::FindChild(Ipv4Address address) {
  for (ChildEntry& c : children) {
    if (c.address == address) return &c;
  }
  return nullptr;
}

const ChildEntry* FibEntry::FindChild(Ipv4Address address) const {
  for (const ChildEntry& c : children) {
    if (c.address == address) return &c;
  }
  return nullptr;
}

void FibEntry::AddChild(Ipv4Address address, VifIndex vif, SimTime now) {
  if (ChildEntry* existing = FindChild(address)) {
    // A pure liveness refresh (same vif) changes no forwarding decision;
    // only a vif move invalidates cached fan-outs.
    if (existing->vif != vif) Touch();
    existing->vif = vif;
    existing->last_heard = now;
    return;
  }
  children.push_back(ChildEntry{address, vif, now});
  Touch();
}

bool FibEntry::RemoveChild(Ipv4Address address) {
  const auto it =
      std::find_if(children.begin(), children.end(),
                   [&](const ChildEntry& c) { return c.address == address; });
  if (it == children.end()) return false;
  children.erase(it);
  Touch();
  return true;
}

bool FibEntry::HasChildOnVif(VifIndex vif) const {
  return std::any_of(children.begin(), children.end(),
                     [&](const ChildEntry& c) { return c.vif == vif; });
}

std::vector<VifIndex> FibEntry::ChildVifs() const {
  std::vector<VifIndex> out;
  ForEachChildVif([&](VifIndex v) { out.push_back(v); });
  return out;
}

std::vector<const ChildEntry*> FibEntry::ChildrenOnVif(VifIndex vif) const {
  std::vector<const ChildEntry*> out;
  ForEachChildOnVif(vif, [&](const ChildEntry& c) { out.push_back(&c); });
  return out;
}

std::size_t FibEntry::ChildCountOnVif(VifIndex vif) const {
  return static_cast<std::size_t>(
      std::count_if(children.begin(), children.end(),
                    [&](const ChildEntry& c) { return c.vif == vif; }));
}

namespace {

// Position of `group` in the sorted entry vector (insertion point if absent).
auto LowerBound(auto& entries, Ipv4Address group) {
  return std::lower_bound(
      entries.begin(), entries.end(), group,
      [](const auto& entry, Ipv4Address g) { return entry.first < g; });
}

}  // namespace

FibEntry* Fib::Find(Ipv4Address group) {
  const auto it = LowerBound(entries_, group);
  return it == entries_.end() || it->first != group ? nullptr : &it->second;
}

const FibEntry* Fib::Find(Ipv4Address group) const {
  const auto it = LowerBound(entries_, group);
  return it == entries_.end() || it->first != group ? nullptr : &it->second;
}

FibEntry& Fib::Create(Ipv4Address group) {
  auto it = LowerBound(entries_, group);
  if (it == entries_.end() || it->first != group) {
    it = entries_.emplace(it, group, FibEntry{});
    it->second.group = group;
    ++table_generation_;
  }
  return it->second;
}

bool Fib::Remove(Ipv4Address group) {
  const auto it = LowerBound(entries_, group);
  if (it == entries_.end() || it->first != group) return false;
  entries_.erase(it);
  ++table_generation_;
  return true;
}

std::size_t Fib::StateUnits() const {
  std::size_t units = 0;
  for (const auto& [group, entry] : entries_) {
    units += 1 + entry.children.size();
  }
  return units;
}

}  // namespace cbt::core
