#include "cbt/fib.h"

#include <algorithm>

namespace cbt::core {

ChildEntry* FibEntry::FindChild(Ipv4Address address) {
  for (ChildEntry& c : children) {
    if (c.address == address) return &c;
  }
  return nullptr;
}

const ChildEntry* FibEntry::FindChild(Ipv4Address address) const {
  for (const ChildEntry& c : children) {
    if (c.address == address) return &c;
  }
  return nullptr;
}

void FibEntry::AddChild(Ipv4Address address, VifIndex vif, SimTime now) {
  if (ChildEntry* existing = FindChild(address)) {
    existing->vif = vif;
    existing->last_heard = now;
    return;
  }
  children.push_back(ChildEntry{address, vif, now});
}

bool FibEntry::RemoveChild(Ipv4Address address) {
  const auto it =
      std::find_if(children.begin(), children.end(),
                   [&](const ChildEntry& c) { return c.address == address; });
  if (it == children.end()) return false;
  children.erase(it);
  return true;
}

bool FibEntry::HasChildOnVif(VifIndex vif) const {
  return std::any_of(children.begin(), children.end(),
                     [&](const ChildEntry& c) { return c.vif == vif; });
}

std::vector<VifIndex> FibEntry::ChildVifs() const {
  std::vector<VifIndex> out;
  for (const ChildEntry& c : children) {
    if (std::find(out.begin(), out.end(), c.vif) == out.end()) {
      out.push_back(c.vif);
    }
  }
  return out;
}

std::vector<const ChildEntry*> FibEntry::ChildrenOnVif(VifIndex vif) const {
  std::vector<const ChildEntry*> out;
  for (const ChildEntry& c : children) {
    if (c.vif == vif) out.push_back(&c);
  }
  return out;
}

FibEntry* Fib::Find(Ipv4Address group) {
  const auto it = entries_.find(group);
  return it == entries_.end() ? nullptr : &it->second;
}

const FibEntry* Fib::Find(Ipv4Address group) const {
  const auto it = entries_.find(group);
  return it == entries_.end() ? nullptr : &it->second;
}

FibEntry& Fib::Create(Ipv4Address group) {
  FibEntry& entry = entries_[group];
  entry.group = group;
  return entry;
}

bool Fib::Remove(Ipv4Address group) { return entries_.erase(group) > 0; }

std::size_t Fib::StateUnits() const {
  std::size_t units = 0;
  for (const auto& [group, entry] : entries_) {
    units += 1 + entry.children.size();
  }
  return units;
}

}  // namespace cbt::core
