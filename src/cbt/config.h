// CBT protocol configuration: the spec's default timer values (section 9)
// plus the optimization switches the experiments ablate.
#pragma once

#include "common/types.h"

namespace cbt::core {

/// Deliberate protocol defects for validating the causal-path checker
/// (src/check/): a mutated run must trip the expectation suite. Never
/// enabled by default; benches expose it behind --mutate.
/// Data-plane execution mode. kFast memoizes resolved forwarding
/// decisions in a per-router flow cache (generation-invalidated) and
/// encodes each outgoing variant once per hop; kSlow recomputes the
/// decision from the FIB/IGMP state on every packet. Both produce
/// byte-identical deliveries — kSlow survives as the differential-test
/// oracle, like the legacy event-queue engine.
enum class DataplaneMode : std::uint8_t {
  kFast = 0,
  kSlow = 1,
};

enum class ProtocolMutation : std::uint8_t {
  kNone = 0,
  /// Suppress every FLUSH-TREE transmission (teardown and the section 2.7
  /// re-configuration flush): downstream routers are silently orphaned
  /// and only recover via their own echo timeout.
  kSuppressFlush = 1,
};

struct CbtConfig {
  // --- Section 9 default timers (all configurable per implementation). ---
  /// Time between successive CBT-ECHO-REQUESTs to parent.
  SimDuration echo_interval = 30 * kSecond;
  /// Retransmission time for a join-request when no ack received.
  SimDuration pend_join_interval = 10 * kSecond;
  /// Time to try joining a different core, or give up.
  SimDuration pend_join_timeout = 30 * kSecond;
  /// Remove transient state for a join that has not been acked.
  SimDuration expire_pending_join = 90 * kSecond;
  /// Time after which a silent parent is considered unreachable.
  SimDuration echo_timeout = 90 * kSecond;
  /// How often a parent checks when each child last spoke.
  SimDuration child_assert_interval = 90 * kSecond;
  /// Remove child information when silent this long.
  SimDuration child_assert_expire = 180 * kSecond;
  /// Scan all interfaces for group presence; if none, send QUIT.
  SimDuration iff_scan_interval = 300 * kSecond;
  /// Section 6.1: keep cycling cores for at most this long on reconnect.
  SimDuration reconnect_timeout = 90 * kSecond;

  // --- Retry counts. -------------------------------------------------------
  /// "some small number (typically 3) of re-tries" for unacked quits.
  int quit_retries = 3;

  // --- Behaviour switches (ablated by the benchmarks). ---------------------
  /// Native-mode forwarding (section 4) vs CBT-mode encapsulation
  /// (section 5) on tree interfaces.
  bool native_mode = true;
  /// Section 2.6 proxy-ack / G-DR optimization.
  bool enable_proxy_ack = true;
  /// Section 8.4 keepalive aggregation across groups sharing a parent.
  bool aggregate_echo = false;
  /// How long a proxy-ack "a G-DR covers this LAN" marker stays fresh
  /// before the D-DR re-originates a join to confirm it (our soft-state
  /// refinement of section 2.6; the draft leaves G-DR failure unhandled).
  SimDuration proxy_refresh_interval = 60 * kSecond;
  /// Delay before a flushed router with local members rejoins.
  SimDuration flush_rejoin_delay = 1 * kSecond;
  /// Section 2.5 (-03) proposal: multicast an IGMP join-confirmation
  /// onto member LANs once the D-DR's join is acknowledged, so hosts
  /// know the delivery tree is in place before sending.
  bool notify_hosts_on_join = true;

  /// Seeded protocol defect for checker validation (see ProtocolMutation).
  ProtocolMutation mutation = ProtocolMutation::kNone;

  /// Data-plane fast path (flow cache + encode-once); see DataplaneMode.
  DataplaneMode dataplane = DataplaneMode::kFast;

  /// Bracket the data-plane handlers with cycle stamps and accumulate
  /// them in RouterStats::dataplane_stage_cycles. Off by default: it is a
  /// measurement aid for bench_dataplane's hop-forwarding throughput, and
  /// the raw cycle counts are inherently nondeterministic.
  bool time_dataplane = false;
};

}  // namespace cbt::core
