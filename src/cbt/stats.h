// Per-router protocol counters, consumed by the experiment harness.
//
// The struct's plain fields are the hot-path storage (an increment is one
// inline add); the ForEachStatsField reflection below is the single
// source of truth for the obs registry names ("cbt.router.<id>.<field>"),
// the MetricSet snapshot view, the generic reset, and the
// ControlMessagesSent() rollup.
#pragma once

#include <cstdint>
#include <type_traits>

#include "obs/fields.h"

namespace cbt::core {

struct RouterStats {
  // Control plane.
  std::uint64_t joins_originated = 0;
  std::uint64_t joins_forwarded = 0;
  std::uint64_t joins_received = 0;
  std::uint64_t joins_cached = 0;  // arrived while pending (section 2.5)
  std::uint64_t join_retransmits = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t proxy_acks_sent = 0;
  std::uint64_t proxy_acks_received = 0;
  std::uint64_t nacks_sent = 0;
  std::uint64_t nacks_received = 0;
  std::uint64_t quits_sent = 0;
  std::uint64_t quits_received = 0;
  std::uint64_t quit_acks_sent = 0;
  std::uint64_t quit_acks_received = 0;
  std::uint64_t flushes_sent = 0;
  std::uint64_t flushes_received = 0;
  std::uint64_t echo_requests_sent = 0;
  std::uint64_t echo_requests_received = 0;
  std::uint64_t echo_replies_sent = 0;
  std::uint64_t echo_replies_received = 0;
  std::uint64_t rejoins_converted = 0;   // REJOIN-ACTIVE -> REJOIN-NACTIVE
  std::uint64_t loops_detected = 0;      // own NACTIVE came back (section 6.3)
  std::uint64_t parent_losses = 0;
  std::uint64_t reconnects_succeeded = 0;
  std::uint64_t reconnects_failed = 0;
  std::uint64_t children_expired = 0;
  std::uint64_t core_pings_sent = 0;
  std::uint64_t core_pings_received = 0;
  std::uint64_t ping_replies_sent = 0;
  std::uint64_t ping_replies_received = 0;
  std::uint64_t malformed_control = 0;
  std::uint64_t control_bytes_sent = 0;

  // Data plane.
  std::uint64_t data_forwarded_tree = 0;     // onto parent/child interfaces
  std::uint64_t data_delivered_lan = 0;      // IP multicast onto member LANs
  std::uint64_t data_encapsulated = 0;       // CBT-mode encaps performed
  std::uint64_t data_decapsulated = 0;
  std::uint64_t data_nonmember_relayed = 0;  // off-tree unicast toward core
  std::uint64_t data_dropped_off_tree = 0;   // section 7 on-tree-bit check
  std::uint64_t data_dropped_ttl = 0;
  std::uint64_t data_dropped_no_state = 0;
  std::uint64_t data_dropped_not_local = 0;  // section 5 local-origin check
  std::uint64_t data_bytes_sent = 0;

  // Data-plane flow cache (fast path only; all zero under kSlow).
  std::uint64_t dataplane_cache_hits = 0;
  std::uint64_t dataplane_cache_misses = 0;       // cold or evicted slot
  std::uint64_t dataplane_cache_invalidates = 0;  // generation mismatch
  std::uint64_t dataplane_cache_occupancy = 0;    // gauge: live slots

  // Forwarding-stage timing (only populated when CbtConfig::time_dataplane
  // is set — bench_dataplane's hop-forwarding throughput measurement).
  // Cycles are raw CycleNow() ticks; calls count timed handler entries.
  std::uint64_t dataplane_stage_cycles = 0;
  std::uint64_t dataplane_stage_calls = 0;

  /// Sum of every field tagged kControlSent below (joins originated,
  /// forwarded and retransmitted, acks, nacks, quits, flushes, echoes,
  /// pings — transmissions only, never receptions).
  std::uint64_t ControlMessagesSent() const {
    return obs::SumTagged(*this, obs::FieldTag::kControlSent);
  }

  void Reset() { obs::ResetStats(*this); }
};

/// obs reflection: one call per counter field (see obs/fields.h).
template <typename Stats, typename Fn>
  requires std::is_same_v<std::remove_const_t<Stats>, RouterStats>
void ForEachStatsField(Stats& s, Fn&& fn) {
  using Tag = obs::FieldTag;
  fn("joins_originated", s.joins_originated, Tag::kControlSent);
  fn("joins_forwarded", s.joins_forwarded, Tag::kControlSent);
  fn("joins_received", s.joins_received, Tag::kNone);
  fn("joins_cached", s.joins_cached, Tag::kNone);
  fn("join_retransmits", s.join_retransmits, Tag::kControlSent);
  fn("acks_sent", s.acks_sent, Tag::kControlSent);
  fn("acks_received", s.acks_received, Tag::kNone);
  fn("proxy_acks_sent", s.proxy_acks_sent, Tag::kControlSent);
  fn("proxy_acks_received", s.proxy_acks_received, Tag::kNone);
  fn("nacks_sent", s.nacks_sent, Tag::kControlSent);
  fn("nacks_received", s.nacks_received, Tag::kNone);
  fn("quits_sent", s.quits_sent, Tag::kControlSent);
  fn("quits_received", s.quits_received, Tag::kNone);
  fn("quit_acks_sent", s.quit_acks_sent, Tag::kControlSent);
  fn("quit_acks_received", s.quit_acks_received, Tag::kNone);
  fn("flushes_sent", s.flushes_sent, Tag::kControlSent);
  fn("flushes_received", s.flushes_received, Tag::kNone);
  fn("echo_requests_sent", s.echo_requests_sent, Tag::kControlSent);
  fn("echo_requests_received", s.echo_requests_received, Tag::kNone);
  fn("echo_replies_sent", s.echo_replies_sent, Tag::kControlSent);
  fn("echo_replies_received", s.echo_replies_received, Tag::kNone);
  fn("rejoins_converted", s.rejoins_converted, Tag::kNone);
  fn("loops_detected", s.loops_detected, Tag::kNone);
  fn("parent_losses", s.parent_losses, Tag::kNone);
  fn("reconnects_succeeded", s.reconnects_succeeded, Tag::kNone);
  fn("reconnects_failed", s.reconnects_failed, Tag::kNone);
  fn("children_expired", s.children_expired, Tag::kNone);
  fn("core_pings_sent", s.core_pings_sent, Tag::kControlSent);
  fn("core_pings_received", s.core_pings_received, Tag::kNone);
  fn("ping_replies_sent", s.ping_replies_sent, Tag::kControlSent);
  fn("ping_replies_received", s.ping_replies_received, Tag::kNone);
  fn("malformed_control", s.malformed_control, Tag::kNone);
  fn("control_bytes_sent", s.control_bytes_sent, Tag::kNone);
  fn("data_forwarded_tree", s.data_forwarded_tree, Tag::kNone);
  fn("data_delivered_lan", s.data_delivered_lan, Tag::kNone);
  fn("data_encapsulated", s.data_encapsulated, Tag::kNone);
  fn("data_decapsulated", s.data_decapsulated, Tag::kNone);
  fn("data_nonmember_relayed", s.data_nonmember_relayed, Tag::kNone);
  fn("data_dropped_off_tree", s.data_dropped_off_tree, Tag::kNone);
  fn("data_dropped_ttl", s.data_dropped_ttl, Tag::kNone);
  fn("data_dropped_no_state", s.data_dropped_no_state, Tag::kNone);
  fn("data_dropped_not_local", s.data_dropped_not_local, Tag::kNone);
  fn("data_bytes_sent", s.data_bytes_sent, Tag::kNone);
  fn("dataplane.cache_hit", s.dataplane_cache_hits, Tag::kNone);
  fn("dataplane.cache_miss", s.dataplane_cache_misses, Tag::kNone);
  fn("dataplane.cache_invalidate", s.dataplane_cache_invalidates, Tag::kNone);
  fn("dataplane.cache_occupancy", s.dataplane_cache_occupancy, Tag::kNone);
  fn("dataplane.stage_cycles", s.dataplane_stage_cycles, Tag::kNone);
  fn("dataplane.stage_calls", s.dataplane_stage_calls, Tag::kNone);
}

}  // namespace cbt::core
