// Per-router protocol counters, consumed by the experiment harness.
#pragma once

#include <cstdint>

namespace cbt::core {

struct RouterStats {
  // Control plane.
  std::uint64_t joins_originated = 0;
  std::uint64_t joins_forwarded = 0;
  std::uint64_t joins_received = 0;
  std::uint64_t joins_cached = 0;  // arrived while pending (section 2.5)
  std::uint64_t join_retransmits = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t proxy_acks_sent = 0;
  std::uint64_t proxy_acks_received = 0;
  std::uint64_t nacks_sent = 0;
  std::uint64_t nacks_received = 0;
  std::uint64_t quits_sent = 0;
  std::uint64_t quits_received = 0;
  std::uint64_t quit_acks_sent = 0;
  std::uint64_t quit_acks_received = 0;
  std::uint64_t flushes_sent = 0;
  std::uint64_t flushes_received = 0;
  std::uint64_t echo_requests_sent = 0;
  std::uint64_t echo_requests_received = 0;
  std::uint64_t echo_replies_sent = 0;
  std::uint64_t echo_replies_received = 0;
  std::uint64_t rejoins_converted = 0;   // REJOIN-ACTIVE -> REJOIN-NACTIVE
  std::uint64_t loops_detected = 0;      // own NACTIVE came back (section 6.3)
  std::uint64_t parent_losses = 0;
  std::uint64_t reconnects_succeeded = 0;
  std::uint64_t reconnects_failed = 0;
  std::uint64_t children_expired = 0;
  std::uint64_t core_pings_sent = 0;
  std::uint64_t core_pings_received = 0;
  std::uint64_t ping_replies_sent = 0;
  std::uint64_t ping_replies_received = 0;
  std::uint64_t malformed_control = 0;
  std::uint64_t control_bytes_sent = 0;

  // Data plane.
  std::uint64_t data_forwarded_tree = 0;     // onto parent/child interfaces
  std::uint64_t data_delivered_lan = 0;      // IP multicast onto member LANs
  std::uint64_t data_encapsulated = 0;       // CBT-mode encaps performed
  std::uint64_t data_decapsulated = 0;
  std::uint64_t data_nonmember_relayed = 0;  // off-tree unicast toward core
  std::uint64_t data_dropped_off_tree = 0;   // section 7 on-tree-bit check
  std::uint64_t data_dropped_ttl = 0;
  std::uint64_t data_dropped_no_state = 0;
  std::uint64_t data_dropped_not_local = 0;  // section 5 local-origin check
  std::uint64_t data_bytes_sent = 0;

  std::uint64_t ControlMessagesSent() const {
    return joins_originated + joins_forwarded + join_retransmits + acks_sent +
           proxy_acks_sent + nacks_sent + quits_sent + quit_acks_sent +
           flushes_sent + echo_requests_sent + echo_replies_sent +
           core_pings_sent + ping_replies_sent;
  }
};

}  // namespace cbt::core
