#include "cbt/tree_printer.h"

#include <algorithm>
#include <map>
#include <ostream>
#include <set>
#include <vector>

namespace cbt::core {
namespace {

struct TreeView {
  std::map<NodeId, std::vector<NodeId>> children;
  std::vector<NodeId> roots;  // parentless on-tree routers
};

void PrintNode(CbtDomain& domain, Ipv4Address group, NodeId node,
               const TreeView& view, const std::string& prefix, bool last,
               bool is_root, std::ostream& os, std::size_t* printed) {
  auto& sim = domain.sim();
  auto& router = domain.router(node);
  const FibEntry* entry = router.fib().Find(group);

  if (is_root) {
    os << prefix << sim.node(node).name;
  } else {
    os << prefix << (last ? "`- " : "+- ") << sim.node(node).name;
  }
  if (entry != nullptr && entry->is_primary_core) {
    os << " [primary core]";
  } else if (entry != nullptr && entry->is_core) {
    os << " [core]";
  }
  // Member LANs this router serves (DR-gated, like the data plane).
  std::vector<std::string> lans;
  for (const VifIndex vif : router.igmp().MemberVifs(group)) {
    if (router.IsSubnetDr(group, vif)) {
      lans.push_back(sim.subnet(sim.interface(node, vif).subnet).name);
    }
  }
  if (!lans.empty()) {
    os << "  members:";
    for (const auto& lan : lans) os << " " << lan;
  }
  os << "\n";
  ++*printed;

  const auto it = view.children.find(node);
  if (it == view.children.end()) return;
  const std::string child_prefix =
      is_root ? prefix : prefix + (last ? "   " : "|  ");
  for (std::size_t i = 0; i < it->second.size(); ++i) {
    PrintNode(domain, group, it->second[i], view, child_prefix,
              i + 1 == it->second.size(), false, os, printed);
  }
}

}  // namespace

std::size_t PrintTree(CbtDomain& domain, Ipv4Address group,
                      std::ostream& os) {
  auto& sim = domain.sim();
  TreeView view;
  std::set<NodeId> on_tree;
  for (const NodeId id : domain.router_ids()) {
    const FibEntry* entry = domain.router(id).fib().Find(group);
    if (entry == nullptr) continue;
    on_tree.insert(id);
    if (entry->HasParent()) {
      if (const auto parent = sim.FindNodeByAddress(entry->parent_address)) {
        view.children[*parent].push_back(id);
        continue;
      }
    }
    view.roots.push_back(id);
  }
  for (auto& [node, kids] : view.children) std::sort(kids.begin(), kids.end());
  std::sort(view.roots.begin(), view.roots.end());

  std::size_t printed = 0;
  bool first = true;
  for (const NodeId root : view.roots) {
    if (!first) os << "(detached)\n";
    PrintNode(domain, group, root, view, "", true, true, os, &printed);
    first = false;
  }
  if (printed == 0) os << "(no routers on-tree for " << group.ToString()
                       << ")\n";
  return printed;
}

}  // namespace cbt::core
