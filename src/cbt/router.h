// CbtRouter: a complete CBT multicast router per the protocol
// specification (draft-ietf-idmr-cbt-spec-03, with -02 fallbacks).
//
// Control plane (sections 2, 6, 8):
//  * D-DR duty — the router is D-DR on a subnet iff it is that subnet's
//    IGMP querier (section 2.3); the D-DR originates JOIN-REQUESTs when an
//    IGMP RP/Core-Report + membership report arrive for an unknown group;
//  * hop-by-hop JOIN-REQUEST / JOIN-ACK processing with transient
//    pending-join state, caching of joins received while pending, and
//    join-request retransmission (PEND-JOIN-INTERVAL);
//  * PROXY-ACK / G-DR handling (section 2.6) so a D-DR whose first hop is
//    on the member LAN keeps no group state;
//  * QUIT-REQUEST/QUIT-ACK teardown and FLUSH-TREE (section 2.7);
//  * CBT-ECHO keepalives, child expiry, parent-failure reconnection
//    cycling through the core list (section 6.1), optional aggregation;
//  * core and router restart behaviour (section 6.2) — a router learns it
//    is a core by receiving a join that targets it; non-primary cores
//    rejoin the primary;
//  * REJOIN-ACTIVE → REJOIN-NACTIVE loop detection (section 6.3).
//
// Data plane (sections 4, 5, 7):
//  * native-mode forwarding over tree interfaces with the valid-on-tree-
//    interface acceptance check;
//  * CBT-mode encapsulation (Figure 3) with CBT-header TTL decrement,
//    CBT unicast vs CBT multicast per child fan-out, and the on-tree bit
//    (0x00→0xff) data-loop suppression of section 7;
//  * member-LAN delivery as plain IP multicast (inner TTL forced to 1 in
//    CBT mode) gated on DR-ship to avoid LAN duplicates;
//  * non-member sending (sections 5.1/5.3): the D-DR encapsulates and
//    unicasts toward the group's core, any on-tree router intercepts.
//
// Deviations from the (ambiguous) draft are noted inline and in DESIGN.md.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "cbt/config.h"
#include "cbt/fib.h"
#include "cbt/flow_cache.h"
#include "cbt/group_directory.h"
#include "cbt/stats.h"
#include "cbt/tunnel_config.h"
#include "common/cycle_clock.h"
#include "igmp/router_igmp.h"
#include "netsim/simulator.h"
#include "netsim/timer.h"
#include "packet/encap.h"
#include "routing/route_manager.h"

namespace cbt::core {

class CbtRouter : public netsim::NetworkAgent {
 public:
  /// Experiment hooks; all optional.
  struct Callbacks {
    /// This router, as D-DR, completed a join for a locally-triggered
    /// membership (normal ack, proxy ack, or instant when already
    /// on-tree). Fired once per transition onto the tree.
    std::function<void(Ipv4Address group)> on_group_established;
    /// Parent declared unreachable (echo timeout).
    std::function<void(Ipv4Address group)> on_parent_lost;
    /// Reconnect finished (re-acked onto the tree).
    std::function<void(Ipv4Address group)> on_reconnected;
    /// Own REJOIN-NACTIVE returned: transient loop broken with a quit.
    std::function<void(Ipv4Address group)> on_loop_detected;
  };

  CbtRouter(netsim::Simulator& sim, NodeId self,
            routing::RouteManager& routes, const GroupDirectory& directory,
            CbtConfig config = {}, igmp::IgmpConfig igmp_config = {});

  // --- NetworkAgent ---------------------------------------------------------
  void Start() override;
  void OnDatagram(VifIndex vif, Ipv4Address link_src, Ipv4Address link_dst,
                  std::span<const std::uint8_t> datagram) override;
  void ResetProtocolCounters() override {
    stats_.Reset();
    // The occupancy gauge describes current cache state, not an interval;
    // it survives a counter reset.
    stats_.dataplane_cache_occupancy = flow_cache_.Occupancy();
  }

  // --- Introspection (tests & experiments) -----------------------------------
  NodeId id() const { return self_; }
  const Fib& fib() const { return fib_; }
  const RouterStats& stats() const { return stats_; }
  RouterStats& mutable_stats() { return stats_; }

  /// Repoints this router at another route manager. Used by
  /// CbtDomain::ShardRoutes so each PDES region's routers share a
  /// region-local manager (RouteManager is single-threaded state).
  void set_routes(routing::RouteManager* routes) { routes_ = routes; }
  const igmp::RouterIgmp& igmp() const { return igmp_; }
  const CbtConfig& config() const { return config_; }

  bool IsOnTree(Ipv4Address group) const { return fib_.Find(group) != nullptr; }
  bool IsPending(Ipv4Address group) const { return pending_.contains(group); }
  /// True when this router declined FIB state after a proxy-ack (2.6).
  bool JoinedViaGdr(Ipv4Address group) const {
    return proxied_groups_.contains(group);
  }
  /// True when this router granted a proxy-ack and is group DR for the
  /// subnet of `vif`.
  bool IsGdr(Ipv4Address group, VifIndex vif) const;

  bool OwnsAddress(Ipv4Address addr) const;
  Ipv4Address primary_address() const { return primary_address_; }

  /// True if this router is the group's DR on the vif's subnet (IGMP
  /// querier D-DR, or proxy-ack G-DR) — the role that forwards data on
  /// and off that subnet.
  bool IsSubnetDr(Ipv4Address group, VifIndex vif) const;

  void set_callbacks(Callbacks callbacks) { callbacks_ = std::move(callbacks); }

  /// Section 5.2 virtual-topology configuration: per-interface modes,
  /// tunnels, and ranked interfaces per core. When a ranking exists for a
  /// join's target core, it replaces the unicast routing lookup.
  TunnelConfig& tunnel_config() { return tunnels_; }
  const TunnelConfig& tunnel_config() const { return tunnels_; }

  /// Force-join a group (bypasses IGMP; used by tests and by cores that
  /// should pre-build the backbone).
  void InitiateJoin(Ipv4Address group, std::vector<Ipv4Address> cores,
                    std::size_t target_index = 0);

  /// Operational hook: abandon the current parent and re-join (the same
  /// path a CBT-ECHO timeout takes, section 6.1). Used by management
  /// tooling and the loop-detection tests to force a re-configuration.
  void TriggerReconnect(Ipv4Address group) { StartReconnect(group); }

  /// Operational hook: run the soft-state maintenance pass (directory
  /// reconciliation + quit eligibility) for one group now instead of
  /// waiting for the next iff scan. The core migrator uses this to make a
  /// published core-list replacement take effect promptly.
  void RunQuitCheck(Ipv4Address group) { QuitCheck(group); }

  /// Operational hook: drop all protocol state as if the router process
  /// restarted (section 6.2). IGMP/odometer counters survive; the tree
  /// state does not — a core re-learns its role from the next join.
  void SimulateRestart();

  /// Full crash model (used by the chaos subsystem): like
  /// SimulateRestart() but also cancels every running timer, forgets IGMP
  /// state, and silences the router until Restart(). Pair with
  /// Simulator::SetNodeUp(node, false) so frames in flight are dropped.
  void Crash();

  /// Brings a crashed router back: re-runs the Start() sequence so it
  /// re-contests IGMP querier duty, re-learns memberships, and re-joins
  /// trees through the normal protocol machinery (section 6.2).
  void Restart();

  /// True between Crash() and Restart().
  bool IsCrashed() const { return !alive_; }

  /// Mutable FIB access for management tooling and invariant tests
  /// (deliberate corruption to exercise the auditor).
  Fib& mutable_fib() { return fib_; }

  /// Debug oracle for the data-plane flow cache: recomputes every cached
  /// decision that would currently be served as a hit and compares it to
  /// the stored one. Returns false iff some slot is stale — i.e. state
  /// changed without the matching generation/epoch bump (the bug class
  /// the generation scheme exists to prevent). Tests corrupt state via
  /// mutable_fib() without Touch() to prove this trips.
  bool FlowCacheCoherent() const;

 private:
  struct DownstreamRequester {
    VifIndex vif = kInvalidVif;
    Ipv4Address from;    // previous hop = prospective child
    Ipv4Address origin;  // join's origin field
    packet::JoinSubcode subcode = packet::JoinSubcode::kActiveJoin;
  };

  struct PendingJoin {
    Ipv4Address group;
    std::vector<Ipv4Address> cores;
    std::size_t core_index = 0;
    Ipv4Address target_core;
    VifIndex upstream_vif = kInvalidVif;
    Ipv4Address upstream_next_hop;
    packet::JoinSubcode subcode = packet::JoinSubcode::kActiveJoin;
    Ipv4Address origin;
    bool locally_originated = false;
    bool reconnect = false;
    /// A non-primary core's rejoin toward the primary (section 2.5).
    /// Never tears down children and retries with a long backoff.
    bool core_rejoin = false;
    /// Trace correlation id (NextTxn()) threading this join attempt's
    /// begin/end/outcome events; 0 for transit joins (no local span).
    std::uint64_t txn = 0;
    SimTime started = 0;
    SimTime core_attempt_started = 0;
    std::vector<DownstreamRequester> requesters;
    /// REJOIN-NACTIVE probes that reached us while we had no parent to
    /// forward them over; re-emitted once our own join resolves (keeps
    /// section 6.3 loop detection alive across concurrent reconnects).
    std::vector<packet::ControlPacket> deferred_nactives;
    netsim::Timer rtx_timer;
    netsim::Timer expire_timer;
  };

  struct QuitState {
    Ipv4Address parent;
    VifIndex vif = kInvalidVif;
    int attempts = 0;
    /// Trace correlation id for this quit exchange's begin/end events.
    std::uint64_t txn = 0;
    netsim::Timer timer;
  };

  /// Outstanding CBT-CORE-PING toward the primary core (pre-rejoin
  /// reachability probe — the -02 mechanism; see packet/cbt_control.h).
  struct CorePingState {
    Ipv4Address target;
    int attempts = 0;
    netsim::Timer timer;
  };

  // --- Control-plane handlers. ---
  void HandleControl(VifIndex vif, const packet::Ipv4Header& ip,
                     const packet::ControlPacket& pkt);
  void HandleJoinRequest(VifIndex vif, const packet::Ipv4Header& ip,
                         const packet::ControlPacket& pkt);
  void HandleRejoinNactive(VifIndex vif, const packet::Ipv4Header& ip,
                           const packet::ControlPacket& pkt);
  void HandleJoinAck(VifIndex vif, const packet::Ipv4Header& ip,
                     const packet::ControlPacket& pkt);
  void HandleJoinNack(VifIndex vif, const packet::Ipv4Header& ip,
                      const packet::ControlPacket& pkt);
  void HandleQuitRequest(VifIndex vif, const packet::Ipv4Header& ip,
                         const packet::ControlPacket& pkt);
  void HandleQuitAck(const packet::ControlPacket& pkt);
  void HandleFlush(VifIndex vif, const packet::Ipv4Header& ip,
                   const packet::ControlPacket& pkt);
  void HandleEchoRequest(VifIndex vif, const packet::Ipv4Header& ip,
                         const packet::ControlPacket& pkt);
  void HandleEchoReply(VifIndex vif, const packet::Ipv4Header& ip,
                       const packet::ControlPacket& pkt);

  // --- Join machinery. ---
  /// D-DR origination (section 2.5) or reconnection (section 6.1).
  void StartJoin(Ipv4Address group, std::vector<Ipv4Address> cores,
                 std::size_t target_index, bool reconnect);
  /// Creates transient state + forwards a join one hop toward its core.
  /// Returns false (and sends NACK downstream) when unroutable.
  bool ForwardJoin(PendingJoin& pending);
  void RetransmitJoin(Ipv4Address group);
  void PendingJoinFailed(Ipv4Address group);
  /// Terminates a join here: ack the sender and adopt it as child.
  void TerminateJoin(VifIndex vif, const packet::Ipv4Header& ip,
                     const packet::ControlPacket& pkt, FibEntry& entry);
  /// Acks every requester cached on a pending join once it resolves.
  void AckRequesters(PendingJoin& pending, FibEntry& entry);
  /// Sends a JOIN-ACK (deciding normal vs proxy per section 2.6).
  void SendAckTo(const DownstreamRequester& req, FibEntry& entry);
  /// True when acking `req` must use PROXY-ACK (section 2.6).
  bool ShouldProxyAck(const DownstreamRequester& req) const;
  /// Non-primary core joins the primary after learning core status.
  /// Probes reachability with CBT-CORE-PING first; the destructive
  /// (child-flushing) rejoin only starts once the primary answers.
  void CoreRejoinPrimary(FibEntry& entry);
  void SendCorePing(Ipv4Address group);
  void HandleCorePing(const packet::Ipv4Header& ip,
                      const packet::ControlPacket& pkt);
  void HandlePingReply(const packet::ControlPacket& pkt);
  /// The actual rejoin join-request (after a successful ping).
  void LaunchCoreRejoin(FibEntry& entry);

  // --- Teardown / maintenance. ---
  void QuitCheck(Ipv4Address group);
  /// Reconciles this router's core role for `group` against the external
  /// directory (demotes removed cores, promotes newly-listed ones). Runs
  /// at the head of every QuitCheck; no-op when the directory does not
  /// know the group or the role already matches.
  void ReconcileCoreRole(Ipv4Address group);
  /// The directory-assigned core index for this router's member LANs;
  /// nullopt unless the group has a registered partition and we serve at
  /// least one member LAN.
  std::optional<std::size_t> AssignedCoreIndex(Ipv4Address group);
  void SendQuit(Ipv4Address group);
  void SendFlushToChildren(FibEntry& entry);
  void RemoveGroupState(Ipv4Address group);
  void StartReconnect(Ipv4Address group);
  void OnEchoTick();
  void OnChildScan();
  void OnIffScan();
  /// IGMP callbacks.
  void OnMemberReport(VifIndex vif, Ipv4Address group, Ipv4Address reporter,
                      bool newly_present);
  void OnCoreReport(VifIndex vif, const packet::IgmpMessage& msg);
  void OnGroupExpired(VifIndex vif, Ipv4Address group);
  /// Section 2.5 (-03) proposal: multicast an IGMP join-confirmation onto
  /// the member LANs once the tree is joined.
  void NotifyHostsJoined(Ipv4Address group);

  // --- Data plane. ---
  void HandleNativeData(VifIndex vif, const packet::Ipv4Header& ip,
                        std::span<const std::uint8_t> datagram);
  void HandleCbtData(VifIndex vif, const packet::Ipv4Header& outer,
                     std::span<const std::uint8_t> datagram);
  /// Forwards a data packet along the tree (both modes). `inner` is the
  /// original IP datagram; `cbt` carries CBT-mode header state when the
  /// packet arrived encapsulated (nullptr for native arrivals).
  /// Dispatches to the flow-cached fast path or the recompute-everything
  /// slow path per CbtConfig::dataplane; both emit identical bytes.
  /// `prebuilt`, when non-null, is an arena packet already holding
  /// exactly `inner_datagram`'s bytes (the caller's one-copy hop
  /// decrement); the fast path fans it out without another copy.
  void ForwardAlongTree(VifIndex arrival_vif, Ipv4Address arrival_src,
                        const FibEntry& entry,
                        const packet::Ipv4Header& inner_ip,
                        std::span<const std::uint8_t> inner_datagram,
                        const packet::CbtDataHeader* cbt,
                        const netsim::PacketRef* prebuilt = nullptr);
  /// The historical per-packet recompute path (the differential oracle).
  void ForwardAlongTreeSlow(VifIndex arrival_vif, Ipv4Address arrival_src,
                            const FibEntry& entry,
                            const packet::Ipv4Header& inner_ip,
                            std::span<const std::uint8_t> inner_datagram,
                            const packet::CbtDataHeader* cbt,
                            const packet::CbtDataHeader& hdr);
  /// Resolves the arrival-invariant forwarding decision for `key`
  /// (cache-miss work; also the coherence oracle's recompute).
  FlowDecision BuildFlowDecision(const FibEntry& entry,
                                 const FlowKey& key) const;
  /// Emits a resolved decision: encode-once per output variant, shared
  /// arena buffers across vifs, residual per-packet origin-LAN check.
  void ExecuteFlowDecision(const FlowDecision& decision, const FibEntry& entry,
                           const packet::Ipv4Header& inner_ip,
                           std::span<const std::uint8_t> inner_datagram,
                           const packet::CbtDataHeader* cbt,
                           const packet::CbtDataHeader& hdr,
                           const netsim::PacketRef* prebuilt);
  /// One-copy hop decrement: stages `datagram` in the arena and patches
  /// TTL + header checksum in place (byte-identical to packet::WithTtl,
  /// minus the intermediate vector).
  netsim::PacketRef MakeTtlPatchedPacket(
      std::span<const std::uint8_t> datagram, std::uint8_t ttl);
  /// Combined flow-cache epoch: the sum of every monotonic counter
  /// covering non-FIB decision inputs (DR/proxy role, IGMP membership
  /// and querier state, tunnel modes). Sums of monotonic counters are
  /// monotonic, so a matching epoch proves none of them moved.
  std::uint64_t DataplaneEpoch() const {
    return dataplane_epoch_ + igmp_.state_version() + tunnels_.version();
  }
  /// Stage-timing brackets around the data-plane handlers (see
  /// CbtConfig::time_dataplane). A branch-predicted compare when off.
  std::uint64_t StageClockStart() const {
    return config_.time_dataplane ? CycleNow() : 0;
  }
  void StageClockStop(std::uint64_t started) {
    if (config_.time_dataplane) {
      stats_.dataplane_stage_cycles += CycleNow() - started;
      ++stats_.dataplane_stage_calls;
    }
  }
  /// Section 5.1/5.3 non-member sending: encapsulate toward a core.
  void RelayNonMemberData(VifIndex vif, const packet::Ipv4Header& ip,
                          std::span<const std::uint8_t> datagram);
  void ForwardUnicast(const packet::Ipv4Header& ip,
                      std::span<const std::uint8_t> datagram);

  // --- Send helpers. ---
  /// Next hop toward `target`: the section 5.2 interface ranking when one
  /// is configured for it, otherwise the unicast routing table.
  std::optional<routing::Route> ResolveToward(Ipv4Address target);
  /// Lowest-addressed neighbouring router on `vif` (tunnel-less ranked
  /// interfaces), or `target` itself when the vif's subnet contains it.
  Ipv4Address NeighborAddressOn(VifIndex vif, Ipv4Address target) const;
  /// Effective forwarding mode of an interface (per-vif override or the
  /// router-wide default from CbtConfig::native_mode).
  VifMode EffectiveMode(VifIndex vif) const;
  /// Next transaction correlation id for trace events, packed as
  /// (node << 32 | per-router counter). Advances whether or not tracing
  /// is active so ids are identical across trace levels (determinism
  /// contract: tracing is record-only).
  std::uint64_t NextTxn() {
    return (static_cast<std::uint64_t>(
                static_cast<std::uint32_t>(self_.value()))
            << 32) |
           ++txn_counter_;
  }
  void SendControl(VifIndex vif, Ipv4Address link_dst, Ipv4Address ip_dst,
                   const packet::ControlPacket& pkt);
  void SendIgmp(VifIndex vif, Ipv4Address dst, const packet::IgmpMessage& msg);
  Ipv4Address VifAddress(VifIndex vif) const;
  SubnetId VifSubnet(VifIndex vif) const;
  bool SubnetContains(VifIndex vif, Ipv4Address addr) const;

  netsim::Simulator* sim_;
  NodeId self_;
  routing::RouteManager* routes_;
  const GroupDirectory* directory_;
  CbtConfig config_;
  Callbacks callbacks_;

  Ipv4Address primary_address_;
  Fib fib_;
  RouterStats stats_;
  igmp::RouterIgmp igmp_;
  TunnelConfig tunnels_;
  FlowCache flow_cache_;
  /// Router-local share of the flow-cache epoch: bumped whenever gdr_ or
  /// proxied_groups_ changes (IsSubnetDr inputs) and on crash/restart.
  std::uint64_t dataplane_epoch_ = 0;

  std::map<Ipv4Address, std::unique_ptr<PendingJoin>> pending_;
  std::map<Ipv4Address, std::unique_ptr<QuitState>> quitting_;
  std::map<Ipv4Address, std::unique_ptr<CorePingState>> core_pings_;
  /// Groups joined via a proxy-ack: we are D-DR but hold no FIB state.
  /// Soft state — the value is the last proxy-ack time; once stale the
  /// D-DR re-originates a join to confirm a G-DR still covers the LAN
  /// (the G-DR may have quit or died while we were none the wiser).
  std::map<Ipv4Address, SimTime> proxied_groups_;
  /// (group, subnet) pairs where we granted a proxy-ack and act as G-DR.
  std::set<std::pair<Ipv4Address, SubnetId>> gdr_;
  /// <group, cores> gleaned from RP/Core-Reports (section 2.5).
  std::map<Ipv4Address, std::pair<std::vector<Ipv4Address>, std::size_t>>
      learned_cores_;

  netsim::Timer echo_timer_;
  netsim::Timer child_scan_timer_;
  netsim::Timer iff_scan_timer_;
  std::uint32_t txn_counter_ = 0;
  /// False while crashed: already-queued closures (flush-rejoin, loop
  /// retries) that survive the state wipe must not act for a dead router.
  bool alive_ = true;
};

}  // namespace cbt::core
