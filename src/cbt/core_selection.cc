#include "cbt/core_selection.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace cbt::core_selection {
namespace {

// Delay stand-in for an unreachable pair; far below SimDuration's max so
// sums and comparisons cannot overflow.
constexpr SimDuration kUnreachable =
    std::numeric_limits<SimDuration>::max() / 4;

SimDuration DelayOr(routing::RouteManager& routes, NodeId from, NodeId to,
                    SimDuration fallback) {
  if (routes.Distance(from, to) == routing::RouteManager::kInfinity) {
    return fallback;
  }
  return routes.PathDelay(from, to);
}

// ---------------------------------------------------------------------------
// The original selection algorithms (also backing the deprecated shims).
// ---------------------------------------------------------------------------

std::vector<NodeId> PickRandom(const std::vector<NodeId>& routers,
                               std::size_t k, Rng& rng) {
  assert(k <= routers.size());
  std::vector<NodeId> out;
  out.reserve(k);
  for (const std::size_t i : rng.SampleWithoutReplacement(routers.size(), k)) {
    out.push_back(routers[i]);
  }
  return out;
}

std::vector<NodeId> PickHighestDegree(const netsim::Simulator& sim,
                                      const std::vector<NodeId>& routers,
                                      std::size_t k) {
  assert(k <= routers.size());
  std::vector<NodeId> sorted = routers;
  std::stable_sort(sorted.begin(), sorted.end(), [&](NodeId a, NodeId b) {
    const std::size_t da = sim.node(a).interfaces.size();
    const std::size_t db = sim.node(b).interfaces.size();
    if (da != db) return da > db;
    return a < b;
  });
  sorted.resize(k);
  return sorted;
}

std::vector<NodeId> PickCentre(routing::RouteManager& routes,
                               const std::vector<NodeId>& routers,
                               std::size_t k) {
  assert(k >= 1 && k <= routers.size());
  std::vector<NodeId> chosen;

  // First core: the 1-center (minimax distance).
  NodeId best = routers.front();
  double best_ecc = routing::RouteManager::kInfinity;
  for (const NodeId candidate : routers) {
    double ecc = 0.0;
    for (const NodeId other : routers) {
      ecc = std::max(ecc, routes.Distance(candidate, other));
    }
    if (ecc < best_ecc) {
      best_ecc = ecc;
      best = candidate;
    }
  }
  chosen.push_back(best);

  // Remaining cores: farthest-point heuristic for coverage.
  while (chosen.size() < k) {
    NodeId farthest = routers.front();
    double farthest_dist = -1.0;
    for (const NodeId candidate : routers) {
      if (std::find(chosen.begin(), chosen.end(), candidate) != chosen.end()) {
        continue;
      }
      double dist = routing::RouteManager::kInfinity;
      for (const NodeId c : chosen) {
        dist = std::min(dist, routes.Distance(candidate, c));
      }
      if (dist > farthest_dist && dist < routing::RouteManager::kInfinity) {
        farthest_dist = dist;
        farthest = candidate;
      }
    }
    chosen.push_back(farthest);
  }
  return chosen;
}

std::vector<NodeId> PickDelayCentre(routing::RouteManager& routes,
                                    const std::vector<NodeId>& routers,
                                    std::size_t k) {
  assert(k >= 1 && k <= routers.size());
  std::vector<NodeId> chosen;

  NodeId best = routers.front();
  SimDuration best_ecc = std::numeric_limits<SimDuration>::max();
  for (const NodeId candidate : routers) {
    SimDuration ecc = 0;
    for (const NodeId other : routers) {
      if (routes.Distance(candidate, other) ==
          routing::RouteManager::kInfinity) {
        ecc = std::numeric_limits<SimDuration>::max();
        break;
      }
      ecc = std::max(ecc, routes.PathDelay(candidate, other));
    }
    if (ecc < best_ecc) {
      best_ecc = ecc;
      best = candidate;
    }
  }
  chosen.push_back(best);

  while (chosen.size() < k) {
    NodeId farthest = routers.front();
    SimDuration farthest_delay = -1;
    for (const NodeId candidate : routers) {
      if (std::find(chosen.begin(), chosen.end(), candidate) != chosen.end()) {
        continue;
      }
      SimDuration delay = std::numeric_limits<SimDuration>::max();
      for (const NodeId c : chosen) {
        delay = std::min(delay, routes.PathDelay(candidate, c));
      }
      if (delay > farthest_delay &&
          delay != std::numeric_limits<SimDuration>::max()) {
        farthest_delay = delay;
        farthest = candidate;
      }
    }
    chosen.push_back(farthest);
  }
  return chosen;
}

std::vector<NodeId> RotateByGroupHash(const std::vector<NodeId>& candidates,
                                      Ipv4Address group) {
  assert(!candidates.empty());
  std::vector<NodeId> out = candidates;
  // Knuth multiplicative hash of the group address picks the primary.
  const std::size_t index =
      static_cast<std::size_t>((group.bits() * 2654435761u) >> 16) %
      out.size();
  std::rotate(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(index),
              out.end());
  return out;
}

// ---------------------------------------------------------------------------
// Shared multi-core helpers.
// ---------------------------------------------------------------------------

const std::vector<NodeId>& MembersOrRouters(const PlacementInput& in) {
  return in.member_routers.empty() ? in.routers : in.member_routers;
}

/// Wraps a core list into a Placement with nearest-core assignment (when
/// the input names member routers and routes are available).
Placement Finish(const PlacementInput& in, std::vector<NodeId> cores) {
  Placement p;
  p.cores = std::move(cores);
  if (!in.member_routers.empty() && in.routes != nullptr) {
    p.assignment = AssignNearest(*in.routes, p.cores, in.member_routers);
  }
  return p;
}

/// Reorders `cores` by descending served-member count (ties: lower id) so
/// the busiest cluster's core becomes the primary, and remaps the
/// assignment to match.
void OrderByClusterSize(const std::vector<NodeId>& members,
                        routing::RouteManager& routes, Placement& p) {
  if (p.cores.size() < 2) return;
  std::vector<std::size_t> assignment =
      p.assignment.empty() ? AssignNearest(routes, p.cores, members)
                           : p.assignment;
  std::vector<std::size_t> count(p.cores.size(), 0);
  for (const std::size_t a : assignment) ++count[a];
  std::vector<std::size_t> order(p.cores.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (count[a] != count[b]) return count[a] > count[b];
                     return p.cores[a] < p.cores[b];
                   });
  std::vector<std::size_t> rank(p.cores.size());
  std::vector<NodeId> cores(p.cores.size());
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    rank[order[pos]] = pos;
    cores[pos] = p.cores[order[pos]];
  }
  p.cores = std::move(cores);
  if (!p.assignment.empty()) {
    for (std::size_t& a : p.assignment) a = rank[a];
  }
}

// ---------------------------------------------------------------------------
// Locality strategy (arXiv 1606.04928): cluster the member routers by
// unicast delay, one core per cluster.
// ---------------------------------------------------------------------------

class LocalityStrategy final : public Strategy {
 public:
  std::string_view name() const override { return "locality"; }

  Placement Place(const PlacementInput& in, std::size_t k) const override {
    assert(in.routes != nullptr);
    assert(k >= 1 && k <= in.routers.size());
    routing::RouteManager& routes = *in.routes;
    const std::vector<NodeId>& members = MembersOrRouters(in);

    // Seed clusters with a delay k-center over the members: the first seed
    // minimizes member eccentricity, the rest maximize delay to the seeds.
    std::vector<NodeId> seeds = PickDelayCentreOverMembers(routes, members, k);

    // Lloyd-style refinement: assign members to the nearest seed, then
    // recentre each cluster on the candidate router that minimizes its
    // eccentricity (ties: lower total delay, then lower id). Three rounds
    // are enough for the seeded start to settle on these topologies.
    std::vector<std::size_t> assignment;
    for (int round = 0; round < 3; ++round) {
      assignment = AssignNearest(routes, seeds, members);
      std::vector<NodeId> next = seeds;
      for (std::size_t c = 0; c < seeds.size(); ++c) {
        NodeId best = seeds[c];
        SimDuration best_ecc = std::numeric_limits<SimDuration>::max();
        SimDuration best_sum = std::numeric_limits<SimDuration>::max();
        for (const NodeId candidate : in.routers) {
          if (std::find(next.begin(), next.end(), candidate) != next.end() &&
              candidate != seeds[c]) {
            continue;  // keep cluster cores distinct
          }
          SimDuration ecc = 0;
          SimDuration sum = 0;
          bool any = false;
          for (std::size_t m = 0; m < members.size(); ++m) {
            if (assignment[m] != c) continue;
            any = true;
            const SimDuration d =
                DelayOr(routes, candidate, members[m], kUnreachable);
            ecc = std::max(ecc, d);
            sum += d;
          }
          if (!any) break;  // empty cluster keeps its seed
          if (ecc < best_ecc || (ecc == best_ecc && sum < best_sum) ||
              (ecc == best_ecc && sum == best_sum && candidate < best)) {
            best_ecc = ecc;
            best_sum = sum;
            best = candidate;
          }
        }
        next[c] = best;
      }
      if (next == seeds) break;
      seeds = std::move(next);
    }

    Placement p = Finish(in, std::move(seeds));
    OrderByClusterSize(members, routes, p);
    return p;
  }

 private:
  static std::vector<NodeId> PickDelayCentreOverMembers(
      routing::RouteManager& routes, const std::vector<NodeId>& members,
      std::size_t k) {
    std::vector<NodeId> seeds;
    NodeId best = members.front();
    SimDuration best_ecc = std::numeric_limits<SimDuration>::max();
    for (const NodeId candidate : members) {
      SimDuration ecc = 0;
      for (const NodeId other : members) {
        ecc = std::max(ecc, DelayOr(routes, candidate, other, kUnreachable));
      }
      if (ecc < best_ecc || (ecc == best_ecc && candidate < best)) {
        best_ecc = ecc;
        best = candidate;
      }
    }
    seeds.push_back(best);
    while (seeds.size() < k) {
      NodeId farthest = NodeId{0};
      SimDuration farthest_delay = -1;
      for (const NodeId candidate : members) {
        if (std::find(seeds.begin(), seeds.end(), candidate) != seeds.end()) {
          continue;
        }
        SimDuration delay = std::numeric_limits<SimDuration>::max();
        for (const NodeId s : seeds) {
          delay = std::min(delay, DelayOr(routes, candidate, s, kUnreachable));
        }
        if (delay > farthest_delay) {
          farthest_delay = delay;
          farthest = candidate;
        }
      }
      if (farthest_delay < 0) break;  // fewer distinct members than k
      seeds.push_back(farthest);
    }
    return seeds;
  }
};

// ---------------------------------------------------------------------------
// VNS strategy (arXiv 1303.4771): variable neighborhood search over
// candidate core sets, minimizing delay variation subject to a delay bound.
// ---------------------------------------------------------------------------

struct VnsCost {
  std::size_t violations = 0;  // members whose delay exceeds the bound
  SimDuration variation = 0;   // max - min member delay
  SimDuration max_delay = 0;

  bool operator<(const VnsCost& o) const {
    if (violations != o.violations) return violations < o.violations;
    if (variation != o.variation) return variation < o.variation;
    return max_delay < o.max_delay;
  }
};

class VnsStrategy final : public Strategy {
 public:
  std::string_view name() const override { return "vns"; }

  Placement Place(const PlacementInput& in, std::size_t k) const override {
    assert(in.routes != nullptr);
    assert(in.rng != nullptr);
    assert(k >= 1 && k <= in.routers.size());
    routing::RouteManager& routes = *in.routes;
    const std::vector<NodeId>& members = MembersOrRouters(in);
    Rng& rng = *in.rng;

    const SimDuration bound =
        in.delay_bound > 0 ? in.delay_bound : AutoBound(routes, in, members);

    std::vector<NodeId> cur = PickDelayCentre(routes, in.routers, k);
    LocalSearch(routes, in.routers, members, bound, cur);
    VnsCost cur_cost = Eval(routes, members, bound, cur);

    const std::size_t j_max = std::min<std::size_t>(k, 3);
    std::size_t j = 1;
    for (int shake = 0; shake < kShakes; ++shake) {
      std::vector<NodeId> trial = Shake(in.routers, cur, j, rng);
      LocalSearch(routes, in.routers, members, bound, trial);
      const VnsCost trial_cost = Eval(routes, members, bound, trial);
      if (trial_cost < cur_cost) {
        cur = std::move(trial);
        cur_cost = trial_cost;
        j = 1;  // improvement: restart from the smallest neighborhood
      } else {
        j = j % j_max + 1;
      }
    }

    Placement p = Finish(in, std::move(cur));
    OrderByClusterSize(members, routes, p);
    return p;
  }

 private:
  static constexpr int kShakes = 16;
  static constexpr int kSearchPasses = 8;

  static SimDuration AutoBound(routing::RouteManager& routes,
                               const PlacementInput& in,
                               const std::vector<NodeId>& members) {
    SimDuration best = kUnreachable;
    for (const NodeId candidate : in.routers) {
      SimDuration ecc = 0;
      for (const NodeId m : members) {
        ecc = std::max(ecc, DelayOr(routes, candidate, m, kUnreachable));
      }
      best = std::min(best, ecc);
    }
    return best + best / 8;
  }

  static VnsCost Eval(routing::RouteManager& routes,
                      const std::vector<NodeId>& members, SimDuration bound,
                      const std::vector<NodeId>& cores) {
    VnsCost cost;
    SimDuration min_delay = std::numeric_limits<SimDuration>::max();
    for (const NodeId m : members) {
      SimDuration d = kUnreachable;
      for (const NodeId c : cores) {
        d = std::min(d, DelayOr(routes, c, m, kUnreachable));
      }
      if (d > bound) ++cost.violations;
      cost.max_delay = std::max(cost.max_delay, d);
      min_delay = std::min(min_delay, d);
    }
    cost.variation =
        members.empty() ? SimDuration{0} : cost.max_delay - min_delay;
    return cost;
  }

  /// Best-improvement single swaps (chosen core <-> unused candidate)
  /// until a pass finds no strictly better neighbor.
  static void LocalSearch(routing::RouteManager& routes,
                          const std::vector<NodeId>& candidates,
                          const std::vector<NodeId>& members,
                          SimDuration bound, std::vector<NodeId>& cores) {
    VnsCost best = Eval(routes, members, bound, cores);
    for (int pass = 0; pass < kSearchPasses; ++pass) {
      std::size_t best_i = cores.size();
      NodeId best_c{};
      for (std::size_t i = 0; i < cores.size(); ++i) {
        const NodeId saved = cores[i];
        for (const NodeId c : candidates) {
          if (std::find(cores.begin(), cores.end(), c) != cores.end()) {
            continue;
          }
          cores[i] = c;
          const VnsCost cost = Eval(routes, members, bound, cores);
          if (cost < best) {
            best = cost;
            best_i = i;
            best_c = c;
          }
        }
        cores[i] = saved;
      }
      if (best_i == cores.size()) break;
      cores[best_i] = best_c;
    }
  }

  /// Replaces j random chosen cores with random unused candidates.
  static std::vector<NodeId> Shake(const std::vector<NodeId>& candidates,
                                   std::vector<NodeId> cores, std::size_t j,
                                   Rng& rng) {
    for (std::size_t step = 0; step < j; ++step) {
      if (candidates.size() <= cores.size()) break;
      const std::size_t slot =
          static_cast<std::size_t>(rng.NextBelow(cores.size()));
      for (int tries = 0; tries < 8; ++tries) {
        const NodeId pick = candidates[static_cast<std::size_t>(
            rng.NextBelow(candidates.size()))];
        if (std::find(cores.begin(), cores.end(), pick) == cores.end()) {
          cores[slot] = pick;
          break;
        }
      }
    }
    return cores;
  }
};

// ---------------------------------------------------------------------------
// Single-site strategies expressed through the same interface.
// ---------------------------------------------------------------------------

class RandomStrategy final : public Strategy {
 public:
  std::string_view name() const override { return "random"; }
  Placement Place(const PlacementInput& in, std::size_t k) const override {
    assert(in.rng != nullptr);
    return Finish(in, PickRandom(in.routers, k, *in.rng));
  }
};

class DegreeStrategy final : public Strategy {
 public:
  std::string_view name() const override { return "degree"; }
  Placement Place(const PlacementInput& in, std::size_t k) const override {
    assert(in.sim != nullptr);
    return Finish(in, PickHighestDegree(*in.sim, in.routers, k));
  }
};

class CentreStrategy final : public Strategy {
 public:
  std::string_view name() const override { return "centre"; }
  Placement Place(const PlacementInput& in, std::size_t k) const override {
    assert(in.routes != nullptr);
    return Finish(in, PickCentre(*in.routes, in.routers, k));
  }
};

class DelayCentreStrategy final : public Strategy {
 public:
  std::string_view name() const override { return "delay-centre"; }
  Placement Place(const PlacementInput& in, std::size_t k) const override {
    assert(in.routes != nullptr);
    return Finish(in, PickDelayCentre(*in.routes, in.routers, k));
  }
};

class HashStrategy final : public Strategy {
 public:
  std::string_view name() const override { return "hash"; }
  Placement Place(const PlacementInput& in, std::size_t k) const override {
    std::vector<NodeId> rotated = RotateByGroupHash(in.routers, in.group);
    rotated.resize(std::min(k, rotated.size()));
    return Finish(in, std::move(rotated));
  }
};

}  // namespace

std::vector<std::size_t> AssignNearest(routing::RouteManager& routes,
                                       const std::vector<NodeId>& cores,
                                       const std::vector<NodeId>& members) {
  std::vector<std::size_t> assignment;
  assignment.reserve(members.size());
  for (const NodeId m : members) {
    std::size_t best = 0;
    SimDuration best_delay = std::numeric_limits<SimDuration>::max();
    for (std::size_t c = 0; c < cores.size(); ++c) {
      const SimDuration d = DelayOr(routes, cores[c], m, kUnreachable);
      if (d < best_delay) {
        best_delay = d;
        best = c;
      }
    }
    assignment.push_back(best);
  }
  return assignment;
}

std::unique_ptr<Strategy> MakeStrategy(std::string_view name) {
  if (name == "random") return std::make_unique<RandomStrategy>();
  if (name == "degree") return std::make_unique<DegreeStrategy>();
  if (name == "centre") return std::make_unique<CentreStrategy>();
  if (name == "delay-centre") return std::make_unique<DelayCentreStrategy>();
  if (name == "hash") return std::make_unique<HashStrategy>();
  if (name == "locality") return std::make_unique<LocalityStrategy>();
  if (name == "vns") return std::make_unique<VnsStrategy>();
  return nullptr;
}

std::vector<std::string_view> StrategyNames() {
  return {"random", "degree", "centre", "delay-centre", "hash", "locality",
          "vns"};
}

}  // namespace cbt::core_selection

namespace cbt::core {

std::vector<NodeId> SelectRandomCores(const std::vector<NodeId>& routers,
                                      std::size_t k, Rng& rng) {
  core_selection::PlacementInput in;
  in.routers = routers;
  in.rng = &rng;
  return core_selection::MakeStrategy("random")->Place(in, k).cores;
}

std::vector<NodeId> SelectHighestDegreeCores(const netsim::Simulator& sim,
                                             const std::vector<NodeId>& routers,
                                             std::size_t k) {
  core_selection::PlacementInput in;
  in.sim = &sim;
  in.routers = routers;
  return core_selection::MakeStrategy("degree")->Place(in, k).cores;
}

std::vector<NodeId> SelectCentreCores(routing::RouteManager& routes,
                                      const std::vector<NodeId>& routers,
                                      std::size_t k) {
  core_selection::PlacementInput in;
  in.routes = &routes;
  in.routers = routers;
  return core_selection::MakeStrategy("centre")->Place(in, k).cores;
}

std::vector<NodeId> SelectDelayCentreCores(routing::RouteManager& routes,
                                           const std::vector<NodeId>& routers,
                                           std::size_t k) {
  core_selection::PlacementInput in;
  in.routes = &routes;
  in.routers = routers;
  return core_selection::MakeStrategy("delay-centre")->Place(in, k).cores;
}

std::vector<NodeId> OrderCoresByGroupHash(const std::vector<NodeId>& candidates,
                                          Ipv4Address group) {
  std::vector<NodeId> out = candidates;
  assert(!out.empty());
  const std::size_t index =
      static_cast<std::size_t>((group.bits() * 2654435761u) >> 16) %
      out.size();
  std::rotate(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(index),
              out.end());
  return out;
}

}  // namespace cbt::core
