#include "cbt/core_selection.h"

#include <algorithm>
#include <cassert>

namespace cbt::core {

std::vector<NodeId> SelectRandomCores(const std::vector<NodeId>& routers,
                                      std::size_t k, Rng& rng) {
  assert(k <= routers.size());
  std::vector<NodeId> out;
  out.reserve(k);
  for (const std::size_t i : rng.SampleWithoutReplacement(routers.size(), k)) {
    out.push_back(routers[i]);
  }
  return out;
}

std::vector<NodeId> SelectHighestDegreeCores(const netsim::Simulator& sim,
                                             const std::vector<NodeId>& routers,
                                             std::size_t k) {
  assert(k <= routers.size());
  std::vector<NodeId> sorted = routers;
  std::stable_sort(sorted.begin(), sorted.end(), [&](NodeId a, NodeId b) {
    const std::size_t da = sim.node(a).interfaces.size();
    const std::size_t db = sim.node(b).interfaces.size();
    if (da != db) return da > db;
    return a < b;
  });
  sorted.resize(k);
  return sorted;
}

std::vector<NodeId> SelectCentreCores(routing::RouteManager& routes,
                                      const std::vector<NodeId>& routers,
                                      std::size_t k) {
  assert(k >= 1 && k <= routers.size());
  std::vector<NodeId> chosen;

  // First core: the 1-center (minimax distance).
  NodeId best = routers.front();
  double best_ecc = routing::RouteManager::kInfinity;
  for (const NodeId candidate : routers) {
    double ecc = 0.0;
    for (const NodeId other : routers) {
      ecc = std::max(ecc, routes.Distance(candidate, other));
    }
    if (ecc < best_ecc) {
      best_ecc = ecc;
      best = candidate;
    }
  }
  chosen.push_back(best);

  // Remaining cores: farthest-point heuristic for coverage.
  while (chosen.size() < k) {
    NodeId farthest = routers.front();
    double farthest_dist = -1.0;
    for (const NodeId candidate : routers) {
      if (std::find(chosen.begin(), chosen.end(), candidate) != chosen.end()) {
        continue;
      }
      double dist = routing::RouteManager::kInfinity;
      for (const NodeId c : chosen) {
        dist = std::min(dist, routes.Distance(candidate, c));
      }
      if (dist > farthest_dist && dist < routing::RouteManager::kInfinity) {
        farthest_dist = dist;
        farthest = candidate;
      }
    }
    chosen.push_back(farthest);
  }
  return chosen;
}

std::vector<NodeId> SelectDelayCentreCores(routing::RouteManager& routes,
                                           const std::vector<NodeId>& routers,
                                           std::size_t k) {
  assert(k >= 1 && k <= routers.size());
  std::vector<NodeId> chosen;

  NodeId best = routers.front();
  SimDuration best_ecc = std::numeric_limits<SimDuration>::max();
  for (const NodeId candidate : routers) {
    SimDuration ecc = 0;
    for (const NodeId other : routers) {
      if (routes.Distance(candidate, other) ==
          routing::RouteManager::kInfinity) {
        ecc = std::numeric_limits<SimDuration>::max();
        break;
      }
      ecc = std::max(ecc, routes.PathDelay(candidate, other));
    }
    if (ecc < best_ecc) {
      best_ecc = ecc;
      best = candidate;
    }
  }
  chosen.push_back(best);

  while (chosen.size() < k) {
    NodeId farthest = routers.front();
    SimDuration farthest_delay = -1;
    for (const NodeId candidate : routers) {
      if (std::find(chosen.begin(), chosen.end(), candidate) != chosen.end()) {
        continue;
      }
      SimDuration delay = std::numeric_limits<SimDuration>::max();
      for (const NodeId c : chosen) {
        delay = std::min(delay, routes.PathDelay(candidate, c));
      }
      if (delay > farthest_delay &&
          delay != std::numeric_limits<SimDuration>::max()) {
        farthest_delay = delay;
        farthest = candidate;
      }
    }
    chosen.push_back(farthest);
  }
  return chosen;
}

std::vector<NodeId> OrderCoresByGroupHash(const std::vector<NodeId>& candidates,
                                          Ipv4Address group) {
  assert(!candidates.empty());
  std::vector<NodeId> out = candidates;
  // Knuth multiplicative hash of the group address picks the primary.
  const std::size_t index =
      static_cast<std::size_t>((group.bits() * 2654435761u) >> 16) %
      out.size();
  std::rotate(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(index),
              out.end());
  return out;
}

}  // namespace cbt::core
