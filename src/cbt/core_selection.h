// Core placement strategies.
//
// The spec externalizes core selection ("work is currently in progress to
// address the issue of core placement"); the CBT architecture and the
// SIGCOMM'93 evaluation discuss how placement quality drives the shared
// tree's delay and traffic concentration. Every placement is a
// `core_selection::Strategy` resolved by name through `MakeStrategy`:
//  * random — the pessimistic baseline;
//  * degree — highest attached-subnet count, a cheap structural heuristic;
//  * centre — greedy k-center over router distances (the best static
//    placement a management entity could compute);
//  * delay-centre — k-center over propagation delay, which directly bounds
//    the shared tree's delay penalty (experiment E3);
//  * hash — deterministic group→core mapping over the candidate set,
//    modelling the HPIM-style "function used to map a group address onto a
//    particular core" ([8], section 2.4 note);
//  * locality — receiver→core partitioning: cluster the member routers by
//    unicast delay and place one core per cluster (Locality Based Core
//    Selection for Multicore Shared Tree Multicasting, arXiv 1606.04928);
//  * vns — delay/delay-variation-constrained placement via variable
//    neighborhood search over candidate core sets (VNS-based RP
//    management, arXiv 1303.4771).
//
// Multi-core strategies return a `Placement`: the ordered core list plus a
// member→core assignment that `CbtDomain::RegisterGroup` feeds into the
// `GroupDirectory` so each member LAN joins its assigned core's subtree.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "netsim/simulator.h"
#include "routing/route_manager.h"

namespace cbt::core_selection {

/// Everything a placement strategy may consult. Individual strategies use
/// subsets: `routers` (the candidate core sites) is always required;
/// `routes` for any distance-aware strategy, `sim` for degree, `rng` for
/// random/vns, `group` for hash, `member_routers` for locality/vns (when
/// empty, the candidate set doubles as the member set).
struct PlacementInput {
  const netsim::Simulator* sim = nullptr;
  routing::RouteManager* routes = nullptr;
  /// Candidate core sites.
  std::vector<NodeId> routers;
  /// Attachment routers of the group's member LANs (one entry per LAN;
  /// duplicates allowed — a router attaching two member LANs counts twice
  /// when clusters are balanced).
  std::vector<NodeId> member_routers;
  Ipv4Address group;
  Rng* rng = nullptr;
  /// Upper bound on member→assigned-core delay for `vns` (the paper's
  /// delay constraint). 0 means auto: 9/8 of the best single-core
  /// eccentricity over the members.
  SimDuration delay_bound = 0;
};

/// A k-core placement: the ordered core list (cores[0] is the primary) and,
/// for each entry of `PlacementInput::member_routers`, the index of the
/// core whose subtree that member LAN should join. `assignment` is empty
/// when the input had no member routers.
struct Placement {
  std::vector<NodeId> cores;
  std::vector<std::size_t> assignment;

  const NodeId* CoreForMember(std::size_t member_index) const {
    if (member_index >= assignment.size()) return nullptr;
    return &cores[assignment[member_index]];
  }
};

class Strategy {
 public:
  virtual ~Strategy() = default;

  /// Registry name ("random", "locality", ...).
  virtual std::string_view name() const = 0;

  /// Picks k cores from `in.routers` and assigns each member router to
  /// one of them. k must be >= 1 and <= in.routers.size().
  virtual Placement Place(const PlacementInput& in, std::size_t k) const = 0;
};

/// Instantiates a strategy by registry name; nullptr for unknown names.
/// Names: random | degree | centre | delay-centre | hash | locality | vns.
std::unique_ptr<Strategy> MakeStrategy(std::string_view name);

/// All registry names, in canonical sweep order.
std::vector<std::string_view> StrategyNames();

/// Nearest-core member assignment by unicast path delay (ties: lower core
/// index). This is the default partition for strategies that only pick
/// core sites; exposed so benches can re-derive assignments for arbitrary
/// core lists.
std::vector<std::size_t> AssignNearest(routing::RouteManager& routes,
                                       const std::vector<NodeId>& cores,
                                       const std::vector<NodeId>& members);

}  // namespace cbt::core_selection

namespace cbt::core {

// ---------------------------------------------------------------------------
// Deprecated free-function shims, kept so pre-registry call sites compile.
// New code should resolve a core_selection::Strategy via MakeStrategy.
// ---------------------------------------------------------------------------

/// Deprecated: use MakeStrategy("random").
std::vector<NodeId> SelectRandomCores(const std::vector<NodeId>& routers,
                                      std::size_t k, Rng& rng);

/// Deprecated: use MakeStrategy("degree").
std::vector<NodeId> SelectHighestDegreeCores(const netsim::Simulator& sim,
                                             const std::vector<NodeId>& routers,
                                             std::size_t k);

/// Deprecated: use MakeStrategy("centre").
std::vector<NodeId> SelectCentreCores(routing::RouteManager& routes,
                                      const std::vector<NodeId>& routers,
                                      std::size_t k);

/// Deprecated: use MakeStrategy("delay-centre").
std::vector<NodeId> SelectDelayCentreCores(routing::RouteManager& routes,
                                           const std::vector<NodeId>& routers,
                                           std::size_t k);

/// Deprecated: use MakeStrategy("hash"). The selected core is rotated to
/// the front of the returned list (all candidates are kept).
std::vector<NodeId> OrderCoresByGroupHash(const std::vector<NodeId>& candidates,
                                          Ipv4Address group);

}  // namespace cbt::core
