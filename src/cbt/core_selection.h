// Core placement strategies.
//
// The spec externalizes core selection ("work is currently in progress to
// address the issue of core placement"); the CBT architecture and the
// SIGCOMM'93 evaluation discuss how placement quality drives the shared
// tree's delay and traffic concentration. These strategies are the knobs
// the delay-ratio experiment (E3) sweeps:
//  * random — the pessimistic baseline;
//  * highest-degree — a cheap structural heuristic;
//  * topological centre — greedy k-center over router distances (the
//    best static placement a management entity could compute);
//  * hash-based group→core mapping over a candidate set, modelling the
//    HPIM-style "function used to map a group address onto a particular
//    core" ([8], section 2.4 note).
#pragma once

#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "netsim/simulator.h"
#include "routing/route_manager.h"

namespace cbt::core {

/// k distinct routers drawn uniformly.
std::vector<NodeId> SelectRandomCores(const std::vector<NodeId>& routers,
                                      std::size_t k, Rng& rng);

/// k routers with the most attached subnets (ties by lower id).
std::vector<NodeId> SelectHighestDegreeCores(const netsim::Simulator& sim,
                                             const std::vector<NodeId>& routers,
                                             std::size_t k);

/// Greedy k-center: first pick minimizes the maximum distance to any
/// router; subsequent picks maximize distance to the chosen set.
std::vector<NodeId> SelectCentreCores(routing::RouteManager& routes,
                                      const std::vector<NodeId>& routers,
                                      std::size_t k);

/// Like SelectCentreCores but minimizes the maximum *propagation delay*
/// instead of the routing cost — the placement that directly bounds the
/// shared tree's delay penalty (experiment E3).
std::vector<NodeId> SelectDelayCentreCores(routing::RouteManager& routes,
                                           const std::vector<NodeId>& routers,
                                           std::size_t k);

/// Deterministic group→core mapping over a candidate set (HPIM-style):
/// the selected core is rotated to the front of the returned list.
std::vector<NodeId> OrderCoresByGroupHash(const std::vector<NodeId>& candidates,
                                          Ipv4Address group);

}  // namespace cbt::core
