// Human-readable dump of a group's distribution tree, reconstructed from
// the routers' live FIB state — the operational "show multicast tree"
// a router vendor would ship.
#pragma once

#include <iosfwd>

#include "cbt/domain.h"

namespace cbt::core {

/// Prints the tree for `group` as an indented hierarchy:
///
///   R4 [primary core]  members: S5 S6 S7
///   +- R3
///   |  +- R1  members: S1 S3
///   |  +- R2 (G-DR)  members: S4
///   +- R8  members: S10 S14
///   ...
///   (detached) R9 ...        <- parentless non-root entries, if any
///
/// Returns the number of on-tree routers printed.
std::size_t PrintTree(CbtDomain& domain, Ipv4Address group, std::ostream& os);

}  // namespace cbt::core
