// CbtDomain: wires a topology into a running CBT "cloud".
//
// Creates one CbtRouter per router node and one HostAgent per host node,
// sharing a RouteManager and a GroupDirectory — the standard harness used
// by tests, examples, and benchmarks. Hosts attached later (AddHost) get
// agents too.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cbt/config.h"
#include "cbt/core_selection.h"
#include "cbt/group_directory.h"
#include "cbt/host.h"
#include "cbt/router.h"
#include "igmp/membership_aggregate.h"
#include "netsim/chaos.h"
#include "netsim/topologies.h"
#include "obs/metrics.h"
#include "routing/route_manager.h"

namespace cbt::core {

class CbtDomain {
 public:
  CbtDomain(netsim::Simulator& sim, netsim::Topology& topo,
            CbtConfig config = {}, igmp::IgmpConfig igmp_config = {});

  /// Starts every agent (IGMP startup queries, timers). Call once.
  void Start() { sim_->StartAgents(); }

  CbtRouter& router(NodeId id);
  CbtRouter& router(const std::string& name);
  HostAgent& host(NodeId id);
  HostAgent& host(const std::string& name);

  /// Attaches a brand-new host to `lan` and registers its agent.
  HostAgent& AddHost(SubnetId lan, const std::string& name);

  /// Attaches an aggregate membership station to `lan` (one agent
  /// standing in for any number of member hosts; see
  /// igmp/membership_aggregate.h). The station resolves core lists
  /// through this domain's GroupDirectory.
  igmp::MembershipAggregate& AddAggregate(
      SubnetId lan, const std::string& name,
      igmp::MembershipAggregate::Mode mode =
          igmp::MembershipAggregate::Mode::kCoalesced);

  igmp::MembershipAggregate& aggregate(NodeId id);

  GroupDirectory& directory() { return directory_; }
  routing::RouteManager& routes() { return routes_; }

  /// Space-parallel PDES support: gives every region its own
  /// RouteManager clone (same mode / LPM mode as the base manager) and
  /// repoints each router at its region's clone, so routing state is
  /// never shared across concurrently-executing regions. All router
  /// lookups are self-sourced, so each clone computes exactly the
  /// per-source tables its region's routers would have computed on the
  /// shared manager — byte-identical routes at any region count. The
  /// base manager keeps serving domain/bench/test queries. Static
  /// next-hop overrides are not copied (bench topologies do not use
  /// them); call before Start().
  void ShardRoutes(int regions,
                   const std::function<int(NodeId)>& region_of);
  netsim::Simulator& sim() { return *sim_; }
  netsim::Topology& topology() { return *topo_; }

  /// Registers a group in the directory with cores given by node ids
  /// (primary first) and returns the core address list.
  std::vector<Ipv4Address> RegisterGroup(Ipv4Address group,
                                         const std::vector<NodeId>& cores);

  /// Registers a k-core placement: publishes the core list plus the
  /// member-LAN → core-index partition (`member_lans[i]` is the LAN whose
  /// members `placement.assignment[i]` maps — the LAN attached to the
  /// strategy's `member_routers[i]`). Hosts and D-DRs on a listed LAN then
  /// join their assigned core's subtree.
  std::vector<Ipv4Address> RegisterGroup(
      Ipv4Address group, const core_selection::Placement& placement,
      const std::vector<SubnetId>& member_lans);

  // --- Fault injection ----------------------------------------------------

  /// Crashes a router: the node stops sending/receiving and its CBT agent
  /// loses every bit of protocol state (FIB, timers, IGMP) — section 6.2's
  /// restart model taken literally.
  void CrashRouter(NodeId id);

  /// Restarts a previously crashed router; it re-acquires all state via
  /// normal protocol means (querier election, member reports, joins).
  void RestartRouter(NodeId id);

  /// Hooks wiring a netsim::ChaosInjector's node-crash events to
  /// CrashRouter/RestartRouter (host nodes just go down/up).
  netsim::ChaosInjector::Hooks ChaosHooks();

  const std::vector<NodeId>& router_ids() const { return router_ids_; }
  const std::vector<NodeId>& host_ids() const { return host_ids_; }
  const std::vector<NodeId>& aggregate_ids() const { return aggregate_ids_; }

  /// Sum of FIB state units across all routers (experiment E1).
  std::size_t TotalFibState() const;
  /// Sum of control messages sent across all routers (experiment E6).
  std::uint64_t TotalControlMessages() const;
  /// Routers holding a FIB entry for `group`.
  std::vector<NodeId> OnTreeRouters(Ipv4Address group) const;

  /// Binds every router's protocol counters ("cbt.router.<id>.*"), the
  /// route manager's work counters ("cbt.routing.*"), and the simulator's
  /// subnet counters into `registry`, and makes it the simulator's
  /// registry for late additions.
  void BindMetrics(obs::Registry& registry);

  /// Flat point-in-time view of everything bound by BindMetrics (plus
  /// per-subnet counters). Requires a prior BindMetrics call.
  obs::MetricSet MetricsSnapshot() const;

 private:
  netsim::Simulator* sim_;
  netsim::Topology* topo_;
  routing::RouteManager routes_;
  /// Per-region managers created by ShardRoutes; empty when unsharded.
  std::vector<std::unique_ptr<routing::RouteManager>> shard_routes_;
  GroupDirectory directory_;
  CbtConfig config_;
  igmp::IgmpConfig igmp_config_;
  std::map<NodeId, std::unique_ptr<CbtRouter>> routers_;
  std::map<NodeId, std::unique_ptr<HostAgent>> hosts_;
  std::map<NodeId, std::unique_ptr<igmp::MembershipAggregate>> aggregates_;
  std::vector<NodeId> router_ids_;
  std::vector<NodeId> host_ids_;
  std::vector<NodeId> aggregate_ids_;
};

}  // namespace cbt::core
