// Section 5.2: "Eliminating the Topology-Discovery Protocol in the
// Presence of Tunnels".
//
// CBT can run over a virtual topology (tunnels between CBT islands)
// without any multicast topology-discovery protocol: each router
// pre-configures its tunnels, marks every interface as native or CBT
// mode, and replaces unicast routing toward a core with a *ranking* of
// interfaces per core — "if the highest-ranked route is unavailable ...
// then the next-highest ranked available route is selected".
//
// TunnelConfig is that per-router configuration table (the spec's
// `intf/type/mode/remote` and `core/backup-intfs` tables). Interface
// liveness stands in for the spec's "Hello-like protocol between tunnel
// end-points": the simulator knows whether the interface/subnet is up,
// which is exactly what a hello exchange would establish.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "common/types.h"
#include "netsim/simulator.h"

namespace cbt::core {

/// Forwarding mode of one interface (the spec's `mode` column).
enum class VifMode {
  kNative,     // plain IP multicast over the link (section 4)
  kCbtTunnel,  // CBT-header encapsulation (section 5), e.g. a tunnel
};

struct TunnelEndpoint {
  VifIndex vif = kInvalidVif;
  /// Remote tunnel endpoint ("remote addr" column); unspecified for
  /// physical interfaces where the link-level target is the packet's
  /// own next hop.
  Ipv4Address remote;
};

class TunnelConfig {
 public:
  /// Marks an interface's forwarding mode; unset interfaces use the
  /// router-wide default (CbtConfig::native_mode).
  void SetVifMode(VifIndex vif, VifMode mode) {
    modes_[vif] = mode;
    ++version_;
  }

  VifMode ModeOf(VifIndex vif, VifMode fallback) const {
    const auto it = modes_.find(vif);
    return it == modes_.end() ? fallback : it->second;
  }

  /// Declares `vif` a configured tunnel to `remote` (the spec's
  /// `tunnel cbt <remote addr>` row). Implies CBT mode on the vif.
  void AddTunnel(VifIndex vif, Ipv4Address remote) {
    tunnels_[vif] = remote;
    modes_[vif] = VifMode::kCbtTunnel;
    ++version_;
  }

  std::optional<Ipv4Address> TunnelRemote(VifIndex vif) const {
    const auto it = tunnels_.find(vif);
    if (it == tunnels_.end()) return std::nullopt;
    return it->second;
  }

  /// Ranked interface list toward `core` — primary first, then the
  /// "backup-intfs" entries.
  void SetCoreRanking(Ipv4Address core, std::vector<VifIndex> ranked) {
    rankings_[core] = std::move(ranked);
    ++version_;
  }

  bool HasRankingFor(Ipv4Address core) const {
    return rankings_.contains(core);
  }

  /// True once any ranking/tunnel is configured — the router then uses
  /// rankings instead of unicast routing for join forwarding.
  bool Active() const { return !rankings_.empty(); }

  /// Highest-ranked *available* path toward `core`: the first ranked
  /// interface that is up (with a live subnet). nullopt when no ranking
  /// exists or every ranked interface is down.
  std::optional<TunnelEndpoint> SelectPath(const netsim::Simulator& sim,
                                           NodeId self,
                                           Ipv4Address core) const;

  /// Monotonic counter bumped on every configuration mutation. Consumers
  /// memoizing per-vif mode decisions (the data-plane flow cache) fold
  /// this into their validity check instead of hooking every setter.
  std::uint64_t version() const { return version_; }

 private:
  std::map<VifIndex, VifMode> modes_;
  std::map<VifIndex, Ipv4Address> tunnels_;
  std::map<Ipv4Address, std::vector<VifIndex>> rankings_;
  std::uint64_t version_ = 0;
};

}  // namespace cbt::core
