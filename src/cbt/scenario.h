// Scripted scenario runner: drive a CBT domain from a small line-oriented
// scenario description — the reproducible-experiment front end used by
// the scenario_runner example and handy for regression capture.
//
// Format (one statement per line, '#' comments):
//
//   topology line 5             # or: star N | grid W H | tree DEPTH |
//                               #     waxman N SEED | figure1 | figure5
//   config native off           # optional: native|proxy-ack|echo-aggregate
//   group g1 239.1.2.3 R4 R9    # group name, address, cores (primary 1st)
//   host src R2                 # place a host on R2's LAN up front
//   at 1s   join  h1 R0 g1      # host h1 on R0's LAN joins g1
//   at 5s   send  h1 g1 100     # h1 multicasts a 100-byte packet
//   at 9s   leave h1 g1
//   at 10s  fail-node R1
//   at 60s  heal-node R1
//   at 70s  fail-link R1 R2     # the subnet joining the two routers
//   at 99s  expect-delivered h2 g1 3   # assertion, checked at that time
//   at 99s  expect-on-tree R4 g1 yes   # or: no
//   run 120s
//
// Times accept s/ms suffixes. Hosts are created on first mention; for
// figure1, host letters (A..L) and router names (R1..R12) from the spec
// topology may be used directly.
#pragma once

#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cbt/domain.h"
#include "netsim/topologies.h"

namespace cbt::core {

/// A parsed scenario, ready to execute.
class Scenario {
 public:
  /// Parses the script; returns nullopt and fills `error` (with a line
  /// number) on malformed input.
  static std::optional<Scenario> Parse(const std::string& text,
                                       std::string* error);

  struct ExpectationResult {
    std::string description;
    bool passed = false;
    std::string detail;  // measured vs expected
  };

  struct RunResult {
    std::vector<ExpectationResult> expectations;
    SimTime end_time = 0;
    bool AllPassed() const {
      for (const auto& e : expectations) {
        if (!e.passed) return false;
      }
      return !expectations.empty() || true;
    }
  };

  /// Builds the world and replays every event. `trace` echoes each event
  /// as it executes.
  RunResult Run(std::ostream* trace = nullptr) const;

 private:
  struct GroupDecl {
    std::string name;
    Ipv4Address address;
    std::vector<std::string> core_routers;
  };

  struct HostDecl {
    std::string name;
    std::string router;
  };

  struct Event {
    SimTime at = 0;
    enum class Kind {
      kJoin,
      kLeave,
      kSend,
      kFailNode,
      kHealNode,
      kFailLink,
      kHealLink,
      kExpectDelivered,
      kExpectOnTree,
    } kind = Kind::kJoin;
    std::string host;      // join/leave/send/expect-delivered
    std::string router;    // join (attachment), fail/heal, expect-on-tree
    std::string router2;   // fail/heal-link peer
    std::string group;     // group name
    std::uint64_t amount = 0;  // payload size / expected count
    bool flag = false;         // expect-on-tree yes/no
  };

  std::string topology_spec_;
  CbtConfig config_;
  std::vector<GroupDecl> groups_;
  std::vector<HostDecl> hosts_;
  std::vector<Event> events_;
  SimTime run_until_ = 0;
};

}  // namespace cbt::core
