#include "cbt/tunnel_config.h"

namespace cbt::core {

std::optional<TunnelEndpoint> TunnelConfig::SelectPath(
    const netsim::Simulator& sim, NodeId self, Ipv4Address core) const {
  const auto it = rankings_.find(core);
  if (it == rankings_.end()) return std::nullopt;
  for (const VifIndex vif : it->second) {
    const netsim::Interface& iface = sim.interface(self, vif);
    if (!iface.up || !sim.subnet(iface.subnet).up) continue;
    TunnelEndpoint endpoint;
    endpoint.vif = vif;
    if (const auto remote = TunnelRemote(vif)) {
      endpoint.remote = *remote;
    }
    return endpoint;
  }
  return std::nullopt;
}

}  // namespace cbt::core
