#include "netsim/simulator.h"

#include <cassert>
#include <stdexcept>
#include <utility>

#include "common/logging.h"

namespace cbt::netsim {
namespace {

// Point-to-point subnets are carved from 10.255.0.0/16 as /30s; LANs are
// expected to use distinct prefixes supplied by the caller.
constexpr std::uint32_t kP2pBase = (10u << 24) | (255u << 16);

// Scoped-change journal bound. Consumers that fall further behind than
// this must treat the whole topology as changed (routing falls back to a
// full invalidation), so the cap only trades precision, not correctness.
constexpr std::size_t kTopologyJournalCap = 256;

}  // namespace

Simulator::Simulator(std::uint64_t seed, EventQueue::Engine engine)
    : events_(engine),
      rng_(seed),
      trace_(obs::ProcessTraceBuffer()),
      seed_(seed) {}

void Simulator::InstallShardBackend(ShardBackend* backend) {
  if (backend != nullptr) {
    // Pending serial state cannot migrate into per-region queues, so a
    // backend must be in place before the first event is scheduled.
    assert(events_.Empty() && clock_ == 0);
  }
  backend_ = backend;
}

void Simulator::SetMetrics(obs::Registry* metrics) {
  metrics_ = metrics;
  if (metrics_ == nullptr) return;
  for (SubnetRecord& s : subnets_) {
    obs::BindStats(*metrics_,
                   "netsim.subnet." + std::to_string(s.id.value()),
                   s.counters);
  }
}

NodeId Simulator::AddNode(std::string name, bool is_router) {
  const NodeId id(static_cast<std::int32_t>(nodes_.size()));
  nodes_.push_back(NodeRecord{id, std::move(name), is_router, true, {}, nullptr});
  return id;
}

SubnetId Simulator::AddSubnet(std::string name, SubnetAddress address,
                              SimDuration delay) {
  const SubnetId id(static_cast<std::int32_t>(subnets_.size()));
  SubnetRecord rec;
  rec.id = id;
  rec.name = std::move(name);
  rec.address = address;
  rec.delay = delay;
  subnets_.push_back(std::move(rec));
  if (metrics_ != nullptr) {
    obs::BindStats(*metrics_, "netsim.subnet." + std::to_string(id.value()),
                   subnets_.back().counters);
  }
  return id;
}

VifIndex Simulator::Attach(NodeId node_id, SubnetId subnet_id) {
  return AttachWithHostPart(node_id, subnet_id, subnet(subnet_id).next_host);
}

VifIndex Simulator::AttachWithHostPart(NodeId node_id, SubnetId subnet_id,
                                       std::uint32_t host_part) {
  NodeRecord& n = node(node_id);
  SubnetRecord& s = subnet(subnet_id);
  const Ipv4Address addr = s.address.HostAddress(host_part);
  if (host_part >= s.next_host) s.next_host = host_part + 1;

  Interface iface;
  iface.node = node_id;
  iface.subnet = subnet_id;
  iface.vif = static_cast<VifIndex>(n.interfaces.size());
  iface.address = addr;
  n.interfaces.push_back(iface);
  s.attachments.emplace_back(node_id, iface.vif);
  RecordTopologyChange(TopologyChange::Kind::kAttach, subnet_id, node_id,
                       true);
  return iface.vif;
}

SubnetId Simulator::Connect(NodeId a, NodeId b, SimDuration delay, double cost) {
  static_assert(kP2pBase != 0);
  // Allocate the next /30 deterministically from the subnet count.
  const std::uint32_t index = static_cast<std::uint32_t>(subnets_.size());
  const SubnetAddress addr = SubnetAddress::FromPrefix(
      Ipv4Address(kP2pBase | (index << 2)), 30);
  const SubnetId sid =
      AddSubnet("p2p-" + node(a).name + "-" + node(b).name, addr, delay);
  subnet(sid).multi_access = false;
  const VifIndex va = Attach(a, sid);
  const VifIndex vb = Attach(b, sid);
  node(a).interfaces[static_cast<std::size_t>(va)].cost = cost;
  node(b).interfaces[static_cast<std::size_t>(vb)].cost = cost;
  return sid;
}

void Simulator::SetAgent(NodeId node_id, NetworkAgent* agent) {
  node(node_id).agent = agent;
}

void Simulator::StartAgents() {
  for (NodeRecord& n : nodes_) {
    if (n.agent == nullptr) continue;
    // Pin the startup work (timer scheduling, initial RNG draws) to the
    // node, so under a shard backend it lands in the node's region.
    AffinityScope affinity(*this, n.id);
    n.agent->Start();
  }
}

const NodeRecord& Simulator::node(NodeId id) const {
  return nodes_.at(static_cast<std::size_t>(id.value()));
}
NodeRecord& Simulator::node(NodeId id) {
  return nodes_.at(static_cast<std::size_t>(id.value()));
}
const SubnetRecord& Simulator::subnet(SubnetId id) const {
  return subnets_.at(static_cast<std::size_t>(id.value()));
}
SubnetRecord& Simulator::subnet(SubnetId id) {
  return subnets_.at(static_cast<std::size_t>(id.value()));
}

const Interface& Simulator::interface(NodeId node_id, VifIndex vif) const {
  return node(node_id).interfaces.at(static_cast<std::size_t>(vif));
}

std::optional<NodeId> Simulator::FindNodeByAddress(Ipv4Address address) const {
  for (const NodeRecord& n : nodes_) {
    for (const Interface& iface : n.interfaces) {
      if (iface.address == address) return n.id;
    }
  }
  return std::nullopt;
}

Ipv4Address Simulator::PrimaryAddress(NodeId node_id) const {
  const NodeRecord& n = node(node_id);
  if (n.interfaces.empty()) return Ipv4Address{};
  return n.interfaces.front().address;
}

std::optional<NodeId> Simulator::FindNodeByName(const std::string& name) const {
  for (const NodeRecord& n : nodes_) {
    if (n.name == name) return n.id;
  }
  return std::nullopt;
}

void Simulator::SetSubnetUp(SubnetId subnet_id, bool up) {
  SubnetRecord& s = subnet(subnet_id);
  if (s.up != up) {
    s.up = up;
    RecordTopologyChange(TopologyChange::Kind::kSubnetState, subnet_id,
                         NodeId{}, up);
  }
}

void Simulator::SetInterfaceUp(NodeId node_id, VifIndex vif, bool up) {
  Interface& iface =
      node(node_id).interfaces.at(static_cast<std::size_t>(vif));
  if (iface.up != up) {
    iface.up = up;
    RecordTopologyChange(TopologyChange::Kind::kInterfaceState, iface.subnet,
                         node_id, up);
  }
}

void Simulator::SetNodeUp(NodeId node_id, bool up) {
  NodeRecord& n = node(node_id);
  if (n.up != up) {
    n.up = up;
    RecordTopologyChange(TopologyChange::Kind::kNodeState, SubnetId{}, node_id,
                         up);
  }
}

void Simulator::RecordTopologyChange(TopologyChange::Kind kind,
                                     SubnetId subnet_id, NodeId node_id,
                                     bool up) {
  ++topology_epoch_;
  if (topology_journal_.size() >= kTopologyJournalCap) {
    // Drop the older half in one move; amortized O(1) per change.
    topology_journal_.erase(
        topology_journal_.begin(),
        topology_journal_.begin() + kTopologyJournalCap / 2);
  }
  topology_journal_.push_back(
      TopologyChange{kind, topology_epoch_, subnet_id, node_id, up});
  static const char* const kKindNames[] = {"subnet-state", "interface-state",
                                           "node-state", "attach"};
  OBS_TRACE(trace(), .time = Now(), .kind = obs::TraceKind::kTopology,
            .name = kKindNames[static_cast<std::size_t>(kind)],
            .node = node_id.value(),
            .arg_a = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(subnet_id.value())),
            .arg_b = up ? 1u : 0u);
}

std::optional<std::span<const TopologyChange>> Simulator::ChangesSince(
    std::uint64_t since) const {
  if (since >= topology_epoch_) {
    return std::span<const TopologyChange>{};
  }
  // Entries are contiguous (one per epoch) and end at topology_epoch_, so
  // the requested range is present iff the journal is long enough.
  const std::uint64_t count = topology_epoch_ - since;
  if (count > topology_journal_.size()) return std::nullopt;
  return std::span<const TopologyChange>(topology_journal_)
      .last(static_cast<std::size_t>(count));
}

void Simulator::SetSubnetLossRate(SubnetId subnet_id, double loss_rate) {
  subnet(subnet_id).faults.loss_rate = loss_rate;
}

void Simulator::SetSubnetFaults(SubnetId subnet_id,
                                const FaultProfile& faults) {
  subnet(subnet_id).faults = faults;
}

bool Simulator::SendDatagram(NodeId node_id, VifIndex vif,
                             Ipv4Address link_dst,
                             std::vector<std::uint8_t> datagram) {
  const NodeRecord& sender = node(node_id);
  if (!sender.up) return false;
  const Interface& out = interface(node_id, vif);
  SubnetRecord& s = subnet(out.subnet);
  // All sender-side state is resolved through the current execution
  // context: counters (per-region deltas for cut subnets), the packet
  // arena (region-local), and the RNG (per-node stream) — so a sharded
  // run touches nothing another region could be touching concurrently.
  SubnetCounters& counters = counters_for(s);
  if (!out.up || !s.up) {
    ++counters.frames_dropped;
    return false;
  }

  ++counters.frames_sent;
  counters.bytes_sent += datagram.size();
  if (frame_observer_) {
    frame_observer_(FrameEvent{Now(), node_id, s.id, link_dst,
                               datagram.size(), datagram});
  }

  // The payload is copied once into the packet arena and shared among all
  // receivers of a multicast frame; delivery closures hold cheap
  // refcounted handles instead of per-hop heap allocations.
  const PacketRef shared = active_arena().Make(datagram);
  return FanOut(node_id, vif, out, s, counters, link_dst, shared);
}

bool Simulator::SendDatagramRef(NodeId node_id, VifIndex vif,
                                Ipv4Address link_dst,
                                const PacketRef& payload) {
  const NodeRecord& sender = node(node_id);
  if (!sender.up) return false;
  const Interface& out = interface(node_id, vif);
  SubnetRecord& s = subnet(out.subnet);
  SubnetCounters& counters = counters_for(s);
  if (!out.up || !s.up) {
    ++counters.frames_dropped;
    return false;
  }

  ++counters.frames_sent;
  counters.bytes_sent += payload.bytes().size();
  if (frame_observer_) {
    frame_observer_(FrameEvent{Now(), node_id, s.id, link_dst,
                               payload.bytes().size(), payload.bytes()});
  }
  return FanOut(node_id, vif, out, s, counters, link_dst, payload);
}

bool Simulator::FanOut(NodeId node_id, VifIndex vif, const Interface& out,
                       SubnetRecord& s, SubnetCounters& counters,
                       Ipv4Address link_dst, const PacketRef& shared) {
  Rng& frng = rng();
  const bool multi = link_dst.IsMulticast() ||
                     link_dst == Ipv4Address(0xFFFFFFFFu);  // broadcast
  const FaultProfile& faults = s.faults;

  // Batched hop delivery: a fault-free multicast fan-out of N receivers
  // becomes ONE vectored delivery event instead of N. Ordering proof: the
  // N per-receiver closures would be scheduled consecutively at the same
  // time with consecutive sequence numbers, so no other event can hold an
  // intermediate slot — running the receivers back-to-back inside one
  // event preserves the strict (time, sequence) order contract exactly.
  // Receiver-side up/down checks stay at delivery time (DeliverFrame), so
  // frames in flight still die with a link or node, and the attachment
  // count is snapshotted so receivers attached after the transmission
  // (AttachHost mid-run) are not reached — both identical to the
  // per-receiver path. Faulty subnets (per-receiver RNG draws) and shard
  // backends (region-crossing deliveries) always use per-receiver events.
  if (delivery_mode_ == DeliveryMode::kBatched && backend_ == nullptr &&
      multi && !faults.Any() && s.attachments.size() > 2) {
    const SubnetId sid = s.id;
    const auto count = static_cast<std::uint32_t>(s.attachments.size());
    const Ipv4Address link_src = out.address;
    Schedule(s.delay, [this, sid, count, node_id, vif, link_src, link_dst,
                       payload = shared] {
      // Re-fetch per iteration: a receiver's agent may attach new nodes
      // to this subnet mid-batch, reallocating the attachment vector.
      for (std::uint32_t i = 0; i < count; ++i) {
        const auto [peer, peer_vif] = subnet(sid).attachments[i];
        if (peer == node_id && peer_vif == vif) continue;  // no self-delivery
        // InjectDelivery, not DeliverFrame: the one payload ref feeds
        // every receiver in turn, so it must never look patchable.
        InjectDelivery(peer, peer_vif, link_src, link_dst, payload.bytes());
      }
    });
    return true;
  }

  for (const auto& [peer, peer_vif] : s.attachments) {
    if (peer == node_id && peer_vif == vif) continue;  // no self-delivery
    const Interface& in = interface(peer, peer_vif);
    if (!multi && in.address != link_dst) continue;
    if (faults.loss_rate > 0.0 && frng.NextBool(faults.loss_rate)) {
      ++counters.frames_dropped;
      continue;
    }
    const Ipv4Address link_src = out.address;

    // Per-receiver fault application. Every copy (original + duplicate)
    // rolls corruption and jitter independently, so a duplicate can be
    // clean while the original is mangled and vice versa.
    int copies = 1;
    if (faults.duplicate_rate > 0.0 && frng.NextBool(faults.duplicate_rate)) {
      ++copies;
      ++counters.frames_duplicated;
    }
    for (int copy = 0; copy < copies; ++copy) {
      SimDuration delay = s.delay;
      const bool jitter_eligible =
          faults.reorder_jitter > 0 &&
          (copy > 0 ||  // duplicates always trail the original
           (faults.reorder_rate > 0.0 && frng.NextBool(faults.reorder_rate)));
      if (jitter_eligible) {
        delay += static_cast<SimDuration>(
            frng.NextBelow(static_cast<std::uint64_t>(faults.reorder_jitter)) +
            1);
        if (copy == 0) ++counters.frames_reordered;
      }
      PacketRef payload = shared;
      if (faults.corrupt_rate > 0.0 && !shared.bytes().empty() &&
          frng.NextBool(faults.corrupt_rate)) {
        PacketArena& arena = active_arena();
        PacketRef mangled = arena.Clone(shared);
        const std::span<std::uint8_t> bytes = arena.MutableBytes(mangled);
        const std::size_t byte =
            static_cast<std::size_t>(frng.NextBelow(bytes.size()));
        const std::uint8_t bit = static_cast<std::uint8_t>(
            1u << frng.NextBelow(8));
        bytes[byte] ^= bit;
        payload = std::move(mangled);
        ++counters.frames_corrupted;
      }
      if (backend_ != nullptr) {
        backend_->ScheduleDelivery(Now() + delay, peer, peer_vif, link_src,
                                   link_dst, payload);
      } else {
        Schedule(delay, [this, peer, peer_vif, link_src, link_dst,
                         payload = std::move(payload)] {
          DeliverFrame(peer, peer_vif, link_src, link_dst, payload);
        });
      }
    }
    if (!multi) break;  // unicast reaches exactly one interface
  }
  return true;
}

void Simulator::DeliverFrame(NodeId receiver, VifIndex vif,
                             Ipv4Address link_src, Ipv4Address link_dst,
                             const PacketRef& datagram) {
  // Expose the arriving ref for the duration of the agent callback so a
  // sole-owner transit hop can patch and resend it without a copy.
  // Deliveries are scheduled, never synchronous, so this cannot nest.
  current_delivery_ = &datagram;
  InjectDelivery(receiver, vif, link_src, link_dst, datagram.bytes());
  current_delivery_ = nullptr;
}

void Simulator::InjectDelivery(NodeId receiver, VifIndex vif,
                               Ipv4Address link_src, Ipv4Address link_dst,
                               std::span<const std::uint8_t> datagram) {
  NodeRecord& n = node(receiver);
  const Interface& in = interface(receiver, vif);
  SubnetRecord& s = subnet(in.subnet);
  // Frames in flight die with the link or receiver.
  if (!n.up || !in.up || !s.up) {
    ++counters_for(s).frames_dropped;
    return;
  }
  if (n.agent != nullptr) {
    n.agent->OnDatagram(vif, link_src, link_dst, datagram);
  }
}

void Simulator::ResetCounters() {
  for (SubnetRecord& s : subnets_) s.counters.Reset();
  // Protocol counters reset in the same stroke, so a windowed measurement
  // (reset; run; read) never mixes warmup traffic into either layer.
  for (NodeRecord& n : nodes_) {
    if (n.agent != nullptr) n.agent->ResetProtocolCounters();
  }
}

void Simulator::RunUntil(SimTime until) {
  if (backend_ != nullptr) {
    backend_->RunUntil(until);
    return;
  }
  while (!events_.Empty() && events_.NextTime() <= until) {
    events_.RunNext(clock_);
  }
  if (clock_ < until) clock_ = until;
}

void Simulator::RunUntilIdle(std::size_t max_events) {
  if (backend_ != nullptr) {
    backend_->RunUntilIdle(max_events);
    return;
  }
  std::size_t executed = 0;
  while (!events_.Empty() && executed < max_events) {
    events_.RunNext(clock_);
    ++executed;
  }
}

}  // namespace cbt::netsim
