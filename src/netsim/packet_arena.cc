#include "netsim/packet_arena.h"

#include <cassert>

namespace cbt::netsim {

PacketRef PacketArena::Make(std::span<const std::uint8_t> bytes) {
  guard_.AssertOwned("netsim::PacketArena");
  std::uint32_t index;
  if (free_head_ != kNil) {
    index = free_head_;
    free_head_ = buffers_[index].next_free;
    ++reuses_;
  } else {
    index = static_cast<std::uint32_t>(buffers_.size());
    buffers_.emplace_back();
  }
  Buffer& buf = buffers_[index];
  buf.data.assign(bytes.begin(), bytes.end());
  buf.refs = 1;
  buf.next_free = kNil;
  ++live_;
  ++total_makes_;
  return PacketRef(this, index);
}

std::span<std::uint8_t> PacketArena::MutableBytes(const PacketRef& ref) {
  assert(ref.arena_ == this && buffers_[ref.index_].refs == 1);
  return buffers_[ref.index_].data;
}

void PacketArena::Release(std::uint32_t index) {
  guard_.AssertOwned("netsim::PacketArena");
  Buffer& buf = buffers_[index];
  assert(buf.refs > 0);
  if (--buf.refs == 0) {
    // Keep the allocation; clear() preserves capacity for reuse.
    buf.data.clear();
    buf.next_free = free_head_;
    free_head_ = index;
    --live_;
  }
}

}  // namespace cbt::netsim
