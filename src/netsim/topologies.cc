#include "netsim/topologies.h"

#include <cassert>
#include <cmath>

namespace cbt::netsim {
namespace {

SubnetAddress LanPrefix(int k) {
  // S<k> = 10.<k>.0.0/16
  return SubnetAddress::FromPrefix(
      Ipv4Address(10, static_cast<std::uint8_t>(k), 0, 0), 16);
}

NodeId AddRouter(Simulator& sim, Topology& topo, const std::string& name) {
  const NodeId id = sim.AddNode(name, /*is_router=*/true);
  topo.nodes[name] = id;
  topo.routers.push_back(id);
  return id;
}

SubnetId AddLan(Simulator& sim, Topology& topo, const std::string& name,
                int prefix_index, SimDuration delay = kMillisecond) {
  const SubnetId id = sim.AddSubnet(name, LanPrefix(prefix_index), delay);
  topo.subnets[name] = id;
  return id;
}

/// Adds a per-router stub LAN so experiments can attach member hosts.
void AddStubLans(Simulator& sim, Topology& topo, int first_prefix) {
  for (std::size_t i = 0; i < topo.routers.size(); ++i) {
    const std::string name = "lan-" + sim.node(topo.routers[i]).name;
    // 172.16.0.0/12 space, /24 per router LAN, to stay clear of 10/8 LANs.
    const SubnetAddress prefix = SubnetAddress::FromPrefix(
        Ipv4Address((172u << 24) | (16u << 16) |
                    (static_cast<std::uint32_t>(first_prefix + (int)i) << 8)),
        24);
    const SubnetId lan = sim.AddSubnet(name, prefix, kMillisecond);
    topo.subnets[name] = lan;
    sim.Attach(topo.routers[i], lan);
    topo.router_lans.push_back(lan);
  }
}

}  // namespace

NodeId AttachHost(Simulator& sim, Topology& topo, SubnetId lan,
                  const std::string& name) {
  const NodeId id = sim.AddNode(name, /*is_router=*/false);
  topo.nodes[name] = id;
  topo.hosts.push_back(id);
  sim.Attach(id, lan);
  return id;
}

Topology MakeFigure1(Simulator& sim) {
  Topology topo;

  // Routers.
  for (int i = 1; i <= 12; ++i) AddRouter(sim, topo, "R" + std::to_string(i));
  const auto R = [&](int i) { return topo.node("R" + std::to_string(i)); };

  // Member LANs S1..S15 (S2 and S8 are transit/stub; addresses 10.k/16).
  for (int k = 1; k <= 15; ++k) {
    AddLan(sim, topo, "S" + std::to_string(k), k);
  }
  const auto S = [&](int k) { return topo.subnet("S" + std::to_string(k)); };

  // --- Router attachments (order fixes addresses; comments note hosts). ---
  // S1: A + R1 (R1 the only CBT router — section 2.5 first join).
  sim.Attach(R(1), S(1));
  // S3: C + R1.
  sim.Attach(R(1), S(3));
  // S4: B + R6/R2/R5. R6 gets the lowest address so it is IGMP querier and
  // hence D-DR (section 2.6 narrative); R2 < R5 so R2 wins the next-hop
  // tie toward R3.
  sim.AttachWithHostPart(R(6), S(4), 1);
  sim.AttachWithHostPart(R(2), S(4), 2);
  sim.AttachWithHostPart(R(5), S(4), 3);
  // S2: transit LAN joining R2, R5 and R3.
  sim.AttachWithHostPart(R(2), S(2), 1);
  sim.AttachWithHostPart(R(5), S(2), 2);
  sim.AttachWithHostPart(R(3), S(2), 3);
  // S8: stub LAN on R6 (keeps R6's only path to R4 via S4, forcing the
  // same-subnet first hop that produces the proxy-ack).
  sim.Attach(R(6), S(8));
  // R1-R3 point-to-point: R1's best next-hop to core R4 is R3.
  topo.subnets["R1-R3"] = sim.Connect(R(1), R(3));
  // R3-R4 point-to-point: final hop of the S1 join.
  topo.subnets["R3-R4"] = sim.Connect(R(3), R(4));
  // R4's member LANs (section 5: all have member presence).
  sim.Attach(R(4), S(5));
  sim.Attach(R(4), S(6));
  sim.Attach(R(4), S(7));
  // R4-R7, R7's member LAN S9 (host E; the -02 teardown example).
  topo.subnets["R4-R7"] = sim.Connect(R(4), R(7));
  sim.Attach(R(7), S(9));
  // R4-R8; R8 serves S10 (host G, the forwarding example) and S14.
  topo.subnets["R4-R8"] = sim.Connect(R(4), R(8));
  sim.Attach(R(8), S(10));
  sim.Attach(R(8), S(14));
  // R8-R9; R9 serves memberless S12 (it must not multicast there).
  topo.subnets["R8-R9"] = sim.Connect(R(8), R(9));
  sim.Attach(R(9), S(12));
  // R9-R10; R10 serves S13 (host H) and S15 (host J).
  topo.subnets["R9-R10"] = sim.Connect(R(9), R(10));
  sim.Attach(R(10), S(13));
  sim.Attach(R(10), S(15));
  // R8-R12; R12 and R11 share stub LAN S11.
  topo.subnets["R8-R12"] = sim.Connect(R(8), R(12));
  sim.Attach(R(12), S(11));
  sim.Attach(R(11), S(11));

  // --- Member hosts (letters per the spec narrative). ---
  AttachHost(sim, topo, S(1), "A");
  AttachHost(sim, topo, S(4), "B");
  AttachHost(sim, topo, S(3), "C");
  AttachHost(sim, topo, S(5), "D");
  AttachHost(sim, topo, S(9), "E");
  AttachHost(sim, topo, S(6), "F");
  AttachHost(sim, topo, S(10), "G");
  AttachHost(sim, topo, S(13), "H");
  AttachHost(sim, topo, S(7), "I");
  AttachHost(sim, topo, S(15), "J");
  AttachHost(sim, topo, S(14), "K");
  // The section 5 walkthrough has R12 as a child of R8, which requires
  // member presence behind R12; the draft's garbled figure does not name
  // the host, so we call it L (on S11, where R12 is the lowest-addressed
  // router and hence D-DR).
  AttachHost(sim, topo, S(11), "L");

  return topo;
}

Topology MakeFigure5Loop(Simulator& sim) {
  Topology topo;
  for (int i = 1; i <= 6; ++i) AddRouter(sim, topo, "R" + std::to_string(i));
  const auto R = [&](int i) { return topo.node("R" + std::to_string(i)); };

  topo.subnets["R1-R2"] = sim.Connect(R(1), R(2));
  topo.subnets["R2-R3"] = sim.Connect(R(2), R(3));
  topo.subnets["R3-R4"] = sim.Connect(R(3), R(4));
  topo.subnets["R4-R5"] = sim.Connect(R(4), R(5));
  topo.subnets["R5-R6"] = sim.Connect(R(5), R(6));
  topo.subnets["R6-R3"] = sim.Connect(R(6), R(3));

  AddStubLans(sim, topo, 0);
  return topo;
}

Topology MakeLine(Simulator& sim, int n, SimDuration link_delay) {
  assert(n >= 1);
  Topology topo;
  for (int i = 0; i < n; ++i) AddRouter(sim, topo, "R" + std::to_string(i));
  for (int i = 0; i + 1 < n; ++i) {
    topo.subnets["link" + std::to_string(i)] =
        sim.Connect(topo.routers[(std::size_t)i], topo.routers[(std::size_t)i + 1],
                    link_delay);
  }
  AddStubLans(sim, topo, 0);
  return topo;
}

Topology MakeStar(Simulator& sim, int n, SimDuration link_delay) {
  assert(n >= 1);
  Topology topo;
  AddRouter(sim, topo, "hub");
  for (int i = 0; i < n; ++i) {
    const NodeId spoke = AddRouter(sim, topo, "spoke" + std::to_string(i));
    topo.subnets["link" + std::to_string(i)] =
        sim.Connect(topo.routers[0], spoke, link_delay);
  }
  AddStubLans(sim, topo, 0);
  return topo;
}

Topology MakeGrid(Simulator& sim, int width, int height,
                  SimDuration link_delay) {
  assert(width >= 1 && height >= 1);
  Topology topo;
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      AddRouter(sim, topo,
                "R" + std::to_string(x) + "_" + std::to_string(y));
    }
  }
  const auto at = [&](int x, int y) {
    return topo.routers[static_cast<std::size_t>(y * width + x)];
  };
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      if (x + 1 < width) sim.Connect(at(x, y), at(x + 1, y), link_delay);
      if (y + 1 < height) sim.Connect(at(x, y), at(x, y + 1), link_delay);
    }
  }
  AddStubLans(sim, topo, 0);
  return topo;
}

Topology MakeBinaryTree(Simulator& sim, int depth, SimDuration link_delay) {
  assert(depth >= 1);
  Topology topo;
  const int count = (1 << depth) - 1;
  for (int i = 0; i < count; ++i) AddRouter(sim, topo, "R" + std::to_string(i));
  for (int i = 1; i < count; ++i) {
    sim.Connect(topo.routers[static_cast<std::size_t>((i - 1) / 2)],
                topo.routers[static_cast<std::size_t>(i)], link_delay);
  }
  AddStubLans(sim, topo, 0);
  return topo;
}

Topology MakeWaxman(Simulator& sim, const WaxmanParams& params) {
  assert(params.n >= 2);
  Topology topo;
  Rng rng(params.seed);

  struct Point {
    double x, y;
  };
  std::vector<Point> pos(static_cast<std::size_t>(params.n));
  for (auto& p : pos) p = {rng.NextDouble(), rng.NextDouble()};

  for (int i = 0; i < params.n; ++i) AddRouter(sim, topo, "R" + std::to_string(i));

  const auto distance = [&](int a, int b) {
    const double dx = pos[(std::size_t)a].x - pos[(std::size_t)b].x;
    const double dy = pos[(std::size_t)a].y - pos[(std::size_t)b].y;
    return std::sqrt(dx * dx + dy * dy);
  };
  const auto connect = [&](int a, int b) {
    const SimDuration delay =
        params.base_delay +
        static_cast<SimDuration>(distance(a, b) *
                                 static_cast<double>(params.delay_spread));
    sim.Connect(topo.routers[(std::size_t)a], topo.routers[(std::size_t)b],
                delay);
  };

  // Waxman edge probability: alpha * exp(-d / (beta * L)), L = max distance.
  const double L = std::sqrt(2.0);
  std::vector<std::vector<bool>> connected(
      (std::size_t)params.n, std::vector<bool>((std::size_t)params.n, false));
  for (int i = 0; i < params.n; ++i) {
    for (int j = i + 1; j < params.n; ++j) {
      const double p =
          params.alpha * std::exp(-distance(i, j) / (params.beta * L));
      if (rng.NextBool(p)) {
        connect(i, j);
        connected[(std::size_t)i][(std::size_t)j] = true;
      }
    }
  }

  // Guarantee connectivity: stitch a random permutation into a chain,
  // adding only the missing edges.
  std::vector<std::size_t> order = rng.SampleWithoutReplacement(
      static_cast<std::size_t>(params.n), static_cast<std::size_t>(params.n));
  // SampleWithoutReplacement(n, n) is a shuffle of 0..n-1.
  for (std::size_t k = 0; k + 1 < order.size(); ++k) {
    const int a = static_cast<int>(std::min(order[k], order[k + 1]));
    const int b = static_cast<int>(std::max(order[k], order[k + 1]));
    if (!connected[(std::size_t)a][(std::size_t)b]) {
      connect(a, b);
      connected[(std::size_t)a][(std::size_t)b] = true;
    }
  }

  AddStubLans(sim, topo, 0);
  return topo;
}

Topology MakeTransitStub(Simulator& sim, const TransitStubParams& params) {
  assert(params.transit_nodes >= 2 && params.stub_domains >= 1 &&
         params.stub_size >= 1);
  Topology topo;
  Rng rng(params.seed);

  // Transit backbone: ring plus random chords (dense, redundant).
  std::vector<NodeId> transit;
  for (int i = 0; i < params.transit_nodes; ++i) {
    transit.push_back(AddRouter(sim, topo, "T" + std::to_string(i)));
  }
  for (int i = 0; i < params.transit_nodes; ++i) {
    sim.Connect(transit[(std::size_t)i],
                transit[(std::size_t)((i + 1) % params.transit_nodes)],
                params.transit_delay);
  }
  for (int i = 0; i < params.transit_nodes; ++i) {
    for (int j = i + 2; j < params.transit_nodes; ++j) {
      if ((i + 1) % params.transit_nodes == j % params.transit_nodes) continue;
      if (rng.NextBool(0.3)) {
        sim.Connect(transit[(std::size_t)i], transit[(std::size_t)j],
                    params.transit_delay);
      }
    }
  }

  // Stub domains: short chains rooted at a random transit router.
  for (int d = 0; d < params.stub_domains; ++d) {
    const NodeId attach =
        transit[(std::size_t)rng.NextBelow((std::uint64_t)params.transit_nodes)];
    NodeId previous = attach;
    for (int k = 0; k < params.stub_size; ++k) {
      const NodeId router = AddRouter(
          sim, topo, "S" + std::to_string(d) + "_" + std::to_string(k));
      sim.Connect(previous, router, params.stub_delay);
      previous = router;
    }
  }

  AddStubLans(sim, topo, 0);
  return topo;
}

}  // namespace cbt::netsim
