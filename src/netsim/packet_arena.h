// Slab allocator for in-flight packets.
//
// Every frame transmission used to allocate a fresh
// shared_ptr<vector<uint8_t>> that lived until the last delivery ran; on
// large topologies that is one malloc + one control block per hop. The
// arena instead keeps a free list of reusable buffers: a send copies the
// datagram into a pooled buffer once and hands out cheap refcounted
// PacketRef handles (single-threaded, non-atomic counts). A buffer's
// allocation is retained when it is released, so the steady-state data
// path performs no heap allocation at all.
//
// Lifetime rule: a PacketRef must not outlive its arena. The simulator
// owns one arena and destroys it after the event queue, so closures
// holding PacketRefs always die first.
//
// Threading rule: the refcounts are non-atomic by design (one arena
// belongs to one simulation replica). Debug builds enforce this with a
// ThreadOwnershipGuard — touching an arena from a second thread aborts.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/thread_guard.h"

namespace cbt::netsim {

class PacketArena;

/// Refcounted view of an arena buffer. Copy = incref; cheap to move.
class PacketRef {
 public:
  PacketRef() = default;
  PacketRef(const PacketRef& other);
  PacketRef& operator=(const PacketRef& other);
  PacketRef(PacketRef&& other) noexcept
      : arena_(std::exchange(other.arena_, nullptr)),
        index_(other.index_) {}
  PacketRef& operator=(PacketRef&& other) noexcept;
  ~PacketRef();

  std::span<const std::uint8_t> bytes() const;
  bool valid() const { return arena_ != nullptr; }

 private:
  friend class PacketArena;
  PacketRef(PacketArena* arena, std::uint32_t index)
      : arena_(arena), index_(index) {}

  PacketArena* arena_ = nullptr;
  std::uint32_t index_ = 0;
};

class PacketArena {
 public:
  PacketArena() = default;
  PacketArena(const PacketArena&) = delete;
  PacketArena& operator=(const PacketArena&) = delete;

  /// Copies `bytes` into a pooled buffer and returns a handle to it.
  PacketRef Make(std::span<const std::uint8_t> bytes);

  /// Copies an existing packet so the copy can be mutated (fault
  /// injection corrupts per-receiver copies). Returns the writable byte
  /// of the new buffer via `MutableBytes` before any further refs exist.
  PacketRef Clone(const PacketRef& ref) { return Make(ref.bytes()); }

  /// Mutable view of a buffer; only safe while the caller holds the sole
  /// reference (i.e. immediately after Make/Clone).
  std::span<std::uint8_t> MutableBytes(const PacketRef& ref);

  /// True when `ref` points into this arena and no other handle shares
  /// the buffer — the holder may then patch the bytes in place (e.g. a
  /// transit hop's TTL decrement) without any copy being observable.
  bool SoleRefHere(const PacketRef& ref) const {
    return ref.arena_ == this && buffers_[ref.index_].refs == 1;
  }

  /// Releases the debug ownership binding so another thread may adopt
  /// the arena — the shard runtime hands region arenas between the
  /// coordinator and pool workers at window barriers (no-op in NDEBUG).
  void ReleaseOwnership() { guard_.ReleaseOwnership(); }

  // --- Accounting (bench + regression tests) -----------------------------
  std::size_t buffers_allocated() const { return buffers_.size(); }
  std::size_t buffers_live() const { return live_; }
  std::uint64_t total_makes() const { return total_makes_; }
  /// Makes served from the free list without allocating.
  std::uint64_t reuses() const { return reuses_; }

 private:
  friend class PacketRef;

  struct Buffer {
    std::vector<std::uint8_t> data;  // capacity retained across reuse
    std::uint32_t refs = 0;
    std::uint32_t next_free = kNil;
  };
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  void AddRef(std::uint32_t index) {
    guard_.AssertOwned("netsim::PacketArena");
    ++buffers_[index].refs;
  }
  void Release(std::uint32_t index);

  ThreadOwnershipGuard guard_;
  std::vector<Buffer> buffers_;
  std::uint32_t free_head_ = kNil;
  std::size_t live_ = 0;
  std::uint64_t total_makes_ = 0;
  std::uint64_t reuses_ = 0;
};

inline PacketRef::PacketRef(const PacketRef& other)
    : arena_(other.arena_), index_(other.index_) {
  if (arena_ != nullptr) arena_->AddRef(index_);
}

inline PacketRef& PacketRef::operator=(const PacketRef& other) {
  if (this != &other) {
    if (other.arena_ != nullptr) other.arena_->AddRef(other.index_);
    if (arena_ != nullptr) arena_->Release(index_);
    arena_ = other.arena_;
    index_ = other.index_;
  }
  return *this;
}

inline PacketRef& PacketRef::operator=(PacketRef&& other) noexcept {
  if (this != &other) {
    if (arena_ != nullptr) arena_->Release(index_);
    arena_ = std::exchange(other.arena_, nullptr);
    index_ = other.index_;
  }
  return *this;
}

inline PacketRef::~PacketRef() {
  if (arena_ != nullptr) arena_->Release(index_);
}

inline std::span<const std::uint8_t> PacketRef::bytes() const {
  return arena_->buffers_[index_].data;
}

}  // namespace cbt::netsim
