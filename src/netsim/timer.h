// One-shot timer handle bound to the simulator event queue.
//
// Protocol state machines hold Timers as members; destroying or
// re-scheduling a Timer cancels the previous pending event, which removes
// a whole class of fire-after-free bugs.
#pragma once

#include <utility>

#include "netsim/simulator.h"

namespace cbt::netsim {

class Timer {
 public:
  Timer() = default;
  explicit Timer(Simulator& sim) : sim_(&sim) {}

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;
  Timer(Timer&& other) noexcept { *this = std::move(other); }
  Timer& operator=(Timer&& other) noexcept {
    if (this != &other) {
      Cancel();
      sim_ = other.sim_;
      id_ = std::exchange(other.id_, kInvalidEventId);
    }
    return *this;
  }

  ~Timer() { Cancel(); }

  void BindTo(Simulator& sim) { sim_ = &sim; }

  /// Cancels any pending firing and schedules `fn` after `delay`.
  /// Templated on the callable so the id-reset wrapper stays within
  /// EventFn's inline capture budget (no per-arm heap allocation).
  template <typename F>
  void Schedule(SimDuration delay, F&& fn) {
    Cancel();
    id_ = sim_->Schedule(delay,
                         [this, fn = std::forward<F>(fn)]() mutable {
                           id_ = kInvalidEventId;  // fired; re-Schedule ok
                           fn();
                         });
  }

  void Cancel() {
    if (id_ != kInvalidEventId && sim_ != nullptr) {
      sim_->Cancel(id_);
      id_ = kInvalidEventId;
    }
  }

  bool IsPending() const { return id_ != kInvalidEventId; }

 private:
  Simulator* sim_ = nullptr;
  EventId id_ = kInvalidEventId;
};

}  // namespace cbt::netsim
