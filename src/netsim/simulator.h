// The network simulator: nodes, interfaces, subnets, and frame delivery.
//
// Model
// -----
// A *subnet* is a broadcast segment — either a multi-access LAN (the spec's
// S1..S15) or a point-to-point link / tunnel (a two-interface subnet). A
// *node* (router or host) attaches to subnets through *interfaces*, each
// with an IPv4 address and a node-local vif index (the spec's "vif").
//
// Frame delivery is link-layer-ish: a sender emits an IP datagram on one of
// its vifs addressed to a link-level destination (the interface owning a
// unicast IP on that subnet, or every other interface for a multicast /
// broadcast destination). Delivery happens one subnet `delay` later.
// There is no implicit forwarding — routers are protocol agents that parse
// the datagram and re-emit it, exactly like a real hop-by-hop router.
//
// Failure injection: subnets, interfaces and whole nodes can be marked
// down; frames in flight to a dead receiver are dropped at delivery time,
// matching a real link cut. Beyond clean cuts, every subnet carries a
// FaultProfile (loss, duplication, reordering jitter, payload corruption)
// applied independently per receiver, and netsim/chaos.h schedules timed
// fault events (flaps, crashes, partitions) deterministically.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "netsim/event_queue.h"
#include "netsim/packet_arena.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cbt::netsim {

class Simulator;

/// A protocol stack attached to a node. The simulator hands every frame
/// that physically reaches one of the node's interfaces to its agent;
/// promiscuity choices (e.g. routers receiving all multicasts, per spec
/// section 2.2) are the agent's business.
class NetworkAgent {
 public:
  virtual ~NetworkAgent() = default;

  /// Called when an IP datagram arrives on `vif`. `link_src` is the
  /// sending interface's address on this subnet (the link-layer source a
  /// real NIC would report); `link_dst` is the link-level destination the
  /// sender used (an interface address on this subnet, or a
  /// multicast/broadcast group).
  virtual void OnDatagram(VifIndex vif, Ipv4Address link_src,
                          Ipv4Address link_dst,
                          std::span<const std::uint8_t> datagram) = 0;

  /// Called once after the agent is attached, with the simulator clock
  /// running; protocols start their timers here.
  virtual void Start() {}

  /// Called by Simulator::ResetCounters(): agents zero their protocol
  /// counters so benches that diff measurement windows don't double-count
  /// warmup traffic. Delivery ledgers (e.g. a host's per-group received
  /// counts) are state, not counters, and must survive.
  virtual void ResetProtocolCounters() {}
};

/// One attachment point of a node to a subnet.
struct Interface {
  NodeId node;
  SubnetId subnet;
  VifIndex vif = kInvalidVif;
  Ipv4Address address;
  /// Routing metric *out* of this interface; asymmetric costs allowed.
  double cost = 1.0;
  bool up = true;
};

struct NodeRecord {
  NodeId id;
  std::string name;
  bool is_router = false;
  bool up = true;
  std::vector<Interface> interfaces;
  NetworkAgent* agent = nullptr;  // non-owning; set via SetAgent
};

/// Per-subnet transmission accounting, used by the traffic-concentration
/// experiment (E4) and control-overhead experiment (E6).
struct SubnetCounters {
  std::uint64_t frames_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t frames_dropped = 0;     // loss or down links
  std::uint64_t frames_duplicated = 0;  // extra copies delivered
  std::uint64_t frames_reordered = 0;   // deliveries given extra jitter
  std::uint64_t frames_corrupted = 0;   // deliveries with flipped bits

  /// Field-wise zeroing (via the obs reflection) — deliberately not the
  /// old `*this = SubnetCounters{}` self-assignment, which would sever
  /// any registry binding that mirrors these fields by address.
  void Reset() { obs::ResetStats(*this); }
};

/// obs reflection (see obs/fields.h): registry names + reset + snapshots.
template <typename Counters, typename Fn>
  requires std::is_same_v<std::remove_const_t<Counters>, SubnetCounters>
void ForEachStatsField(Counters& c, Fn&& fn) {
  using Tag = obs::FieldTag;
  fn("frames_sent", c.frames_sent, Tag::kNone);
  fn("bytes_sent", c.bytes_sent, Tag::kNone);
  fn("frames_dropped", c.frames_dropped, Tag::kNone);
  fn("frames_duplicated", c.frames_duplicated, Tag::kNone);
  fn("frames_reordered", c.frames_reordered, Tag::kNone);
  fn("frames_corrupted", c.frames_corrupted, Tag::kNone);
}

/// Per-subnet fault model, applied independently to every receiver of a
/// frame (like independent per-NIC noise). All probabilities in [0, 1].
struct FaultProfile {
  /// Frame silently dropped for this receiver.
  double loss_rate = 0.0;
  /// Receiver gets a second copy of the frame (one extra, delayed by up
  /// to `reorder_jitter` beyond the nominal delay — duplicates in real
  /// networks come from retransmission races, so they trail the original).
  double duplicate_rate = 0.0;
  /// Delivery delayed by a uniform extra amount in (0, reorder_jitter],
  /// letting later frames overtake it: bounded reordering.
  double reorder_rate = 0.0;
  SimDuration reorder_jitter = 0;
  /// One random byte of the datagram is bit-flipped in the receiver's
  /// copy; checksums must catch this (counted by `malformed_control`).
  double corrupt_rate = 0.0;

  bool Any() const {
    return loss_rate > 0.0 || duplicate_rate > 0.0 || reorder_rate > 0.0 ||
           corrupt_rate > 0.0;
  }
};

struct SubnetRecord {
  SubnetId id;
  std::string name;
  SubnetAddress address;
  SimDuration delay = kMillisecond;
  FaultProfile faults;
  /// True for LANs (hosts may attach, proxy-ack applies — section 2.6);
  /// false for point-to-point links and tunnels created via Connect().
  bool multi_access = true;
  bool up = true;
  std::uint32_t next_host = 1;  // next free host part
  std::vector<std::pair<NodeId, VifIndex>> attachments;
  SubnetCounters counters;
};

/// Observer invoked for every frame transmission (before delivery).
struct FrameEvent {
  SimTime time;
  NodeId sender;
  SubnetId subnet;
  Ipv4Address link_dst;
  std::size_t bytes;
  /// The transmitted datagram; valid only for the duration of the
  /// observer call (it may alias a pooled arena buffer).
  std::span<const std::uint8_t> payload;
};

/// One scoped topology mutation, journaled 1:1 with topology-epoch bumps
/// so consumers (unicast routing) can invalidate only the state a change
/// could have touched instead of recomputing the world.
struct TopologyChange {
  enum class Kind : std::uint8_t {
    kSubnetState,     // subnet up/down       (subnet valid)
    kInterfaceState,  // interface up/down    (node + subnet valid)
    kNodeState,       // node up/down         (node valid; scope = its subnets)
    kAttach,          // new attachment added (node + subnet valid; up=true)
  };
  Kind kind;
  std::uint64_t epoch = 0;  // topology_epoch() value after this change
  SubnetId subnet;
  NodeId node;
  bool up = true;  // the new state
};

/// Execution backend that shards one simulation across cores
/// (implemented by exec::pdes::Runtime; see docs/PROTOCOL.md,
/// "Space-parallel PDES & lookahead contract"). While installed, the
/// Simulator routes its clock, RNG, trace sink, event scheduling, frame
/// delivery, and subnet counters through the backend, so events execute
/// on per-region queues with region-local state. With no backend
/// installed (the default) the classic single-threaded engine runs
/// byte-for-byte unchanged.
class ShardBackend {
 public:
  virtual ~ShardBackend() = default;

  /// Committed global time from the coordinator, or the executing
  /// region's local clock while a region event runs.
  virtual SimTime Now() const = 0;
  /// RNG stream of the current execution context. Per-node streams keep
  /// each node's draw sequence independent of the region count.
  virtual Rng& ContextRng() = 0;
  /// Trace sink of the current execution context: a region-local ring
  /// merged into the simulation's base ring in deterministic event-key
  /// order at synchronisation points. Null when tracing is off.
  virtual obs::TraceBuffer* ContextTrace() = 0;
  /// Packet arena of the current execution context; packet refs never
  /// cross regions (cross-region deliveries copy bytes).
  virtual PacketArena& ContextArena() = 0;
  /// Counter sink for `subnet`. Cut subnets (attachments in more than
  /// one region) get per-region delta buffers, summed at
  /// synchronisation points so concurrent regions never share a row.
  virtual SubnetCounters& CountersFor(SubnetRecord& subnet) = 0;
  virtual EventId Schedule(SimTime when, EventFn fn) = 0;
  virtual bool Cancel(EventId id) = 0;
  /// Frame delivery to `receiver` at absolute time `when`. Deliveries
  /// within the sender's region stay packet-arena references; deliveries
  /// into another region become typed channel messages drained at the
  /// next window barrier (always >= lookahead away).
  virtual void ScheduleDelivery(SimTime when, NodeId receiver, VifIndex vif,
                                Ipv4Address link_src, Ipv4Address link_dst,
                                const PacketRef& payload) = 0;
  virtual void RunUntil(SimTime until) = 0;
  virtual void RunUntilIdle(std::size_t max_events) = 0;
  /// Sets the calling thread's node affinity (-1 = none) and returns the
  /// previous value; see AffinityScope below.
  virtual std::int32_t ExchangeAffinity(std::int32_t node) = 0;
};

class Simulator {
 public:
  /// `engine` selects the scheduler implementation; kLegacyHeap exists
  /// only for the differential determinism tests and engine benchmarks.
  explicit Simulator(
      std::uint64_t seed = 1,
      EventQueue::Engine engine = EventQueue::Engine::kTimerWheel);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // --- Topology construction -------------------------------------------

  NodeId AddNode(std::string name, bool is_router);

  SubnetId AddSubnet(std::string name, SubnetAddress address,
                     SimDuration delay = kMillisecond);

  /// Attaches `node` to `subnet`; the interface address is the next free
  /// host address on the subnet. Returns the new vif index.
  VifIndex Attach(NodeId node, SubnetId subnet);

  /// Attaches with an explicit host part (e.g. to force address ordering
  /// for DR-election tests).
  VifIndex AttachWithHostPart(NodeId node, SubnetId subnet,
                              std::uint32_t host_part);

  /// Convenience: creates a /30 point-to-point subnet joining two nodes.
  SubnetId Connect(NodeId a, NodeId b, SimDuration delay = kMillisecond,
                   double cost = 1.0);

  void SetAgent(NodeId node, NetworkAgent* agent);

  /// Runs every agent's Start() hook; call once after topology setup.
  void StartAgents();

  // --- Accessors ---------------------------------------------------------

  SimTime Now() const {
    return backend_ != nullptr ? backend_->Now() : clock_;
  }
  Rng& rng() { return backend_ != nullptr ? backend_->ContextRng() : rng_; }

  /// Seed this simulation was constructed with; shard backends derive
  /// per-node RNG streams from it.
  std::uint64_t seed() const { return seed_; }

  /// The simulation's own RNG regardless of any installed backend — the
  /// backend's coordinator context returns this stream so driver-side
  /// draws stay coherent with pre-install setup draws.
  Rng& base_rng() { return rng_; }

  // --- Observability ------------------------------------------------------

  /// Attaches a metrics registry: existing and future subnet counters are
  /// mirrored under `netsim.subnet.<id>.<field>`. Protocol agents bind
  /// their own stats via their domain's BindMetrics(). Pass nullptr to
  /// detach (bindings in the registry persist but stop being updated
  /// only when their owners die — detach before tearing the sim down
  /// if the registry outlives it).
  void SetMetrics(obs::Registry* metrics);
  obs::Registry* metrics() const { return metrics_; }

  /// Trace buffer for this simulation. Defaults to the process-wide
  /// buffer (obs::SetProcessTraceBuffer) captured at construction; null
  /// means tracing off. Recording is passive — event order, RNG draws
  /// and all outputs are byte-identical with tracing on or off.
  void SetTrace(obs::TraceBuffer* trace) { trace_ = trace; }
  obs::TraceBuffer* trace() const {
    return backend_ != nullptr ? backend_->ContextTrace() : trace_;
  }
  /// The simulation's own ring regardless of any installed backend — the
  /// merge target a shard backend copies region rings into.
  obs::TraceBuffer* base_trace() const { return trace_; }

  /// Lane label for Chrome-trace export when one process runs several
  /// topologies (benches bump it per sweep entry).
  void SetTracePid(int pid) { trace_pid_ = pid; }
  int trace_pid() const { return trace_pid_; }

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t subnet_count() const { return subnets_.size(); }

  const NodeRecord& node(NodeId id) const;
  NodeRecord& node(NodeId id);
  const SubnetRecord& subnet(SubnetId id) const;
  SubnetRecord& subnet(SubnetId id);

  const Interface& interface(NodeId node, VifIndex vif) const;

  /// Looks up the node owning `address`, if any.
  std::optional<NodeId> FindNodeByAddress(Ipv4Address address) const;

  /// First interface address of a node — its conventional "router id".
  Ipv4Address PrimaryAddress(NodeId node) const;

  /// Finds a node by construction name (test convenience; linear scan).
  std::optional<NodeId> FindNodeByName(const std::string& name) const;

  // --- Failure injection -------------------------------------------------

  void SetSubnetUp(SubnetId subnet, bool up);
  void SetInterfaceUp(NodeId node, VifIndex vif, bool up);
  /// A down node neither sends nor receives; its timers still fire but
  /// SendDatagram becomes a no-op (agents may also be swapped out).
  void SetNodeUp(NodeId node, bool up);
  void SetSubnetLossRate(SubnetId subnet, double loss_rate);
  /// Installs a full fault model on a subnet (loss, duplication,
  /// reordering, corruption); replaces any previous profile.
  void SetSubnetFaults(SubnetId subnet, const FaultProfile& faults);

  /// Epoch counter bumped on every up/down change; routing watches this.
  std::uint64_t topology_epoch() const { return topology_epoch_; }

  /// The scoped changes with epoch in (since, topology_epoch()], oldest
  /// first. nullopt when the bounded journal has already discarded part
  /// of that range — the caller must then assume everything changed.
  std::optional<std::span<const TopologyChange>> ChangesSince(
      std::uint64_t since) const;

  // --- Data plane ----------------------------------------------------------

  /// Emits `datagram` from `node` out of `vif`, link-addressed to
  /// `link_dst`. Multicast/broadcast destinations reach every other live
  /// attachment on the subnet; unicast reaches the owning interface.
  /// Returns false if the frame could not be transmitted at all (node,
  /// interface, or subnet down).
  bool SendDatagram(NodeId node, VifIndex vif, Ipv4Address link_dst,
                    std::vector<std::uint8_t> datagram);

  /// Copies `datagram` into the current execution context's packet arena
  /// and returns the pooled handle. Pair with SendDatagramRef so one
  /// arena copy serves a whole fan-out (the data-plane encode-once path).
  PacketRef MakePacket(std::span<const std::uint8_t> datagram) {
    return active_arena().Make(datagram);
  }

  /// Like SendDatagram but transmits an already-pooled payload without
  /// re-copying it; several sends may share one PacketRef. Wire bytes,
  /// counters, fault draws and delivery order are identical to the
  /// vector overload.
  bool SendDatagramRef(NodeId node, VifIndex vif, Ipv4Address link_dst,
                       const PacketRef& payload);

  /// Mutable view of a packet just staged with MakePacket, valid only
  /// while the caller holds the sole reference (asserted by the arena).
  /// Lets the data plane patch a header in place instead of copying the
  /// datagram through an intermediate buffer first.
  std::span<std::uint8_t> MutablePacket(const PacketRef& ref) {
    return active_arena().MutableBytes(ref);
  }

  /// Zero-copy transit: while an agent is inside OnDatagram for a
  /// per-receiver frame delivery, this returns the arena handle of the
  /// arriving buffer — IF the delivery closure is its sole owner and
  /// `datagram` is exactly that buffer. The agent may then patch the
  /// bytes in place (TTL decrement) and retransmit the same handle with
  /// SendDatagramRef, eliding the per-hop copy entirely. Returns nullptr
  /// whenever sharing could be observed: batched fan-outs (one buffer,
  /// many receivers), shard-backend injections, duplicated/corrupted
  /// copies still in flight, or a sub-span (decapsulated inner packet).
  const PacketRef* PatchableDeliveryRef(
      std::span<const std::uint8_t> datagram) {
    const PacketRef* ref = current_delivery_;
    if (ref == nullptr || !active_arena().SoleRefHere(*ref)) return nullptr;
    const std::span<const std::uint8_t> bytes = ref->bytes();
    if (bytes.data() != datagram.data() || bytes.size() != datagram.size()) {
      return nullptr;
    }
    return ref;
  }

  /// How multicast fan-outs are delivered on the serial engine.
  /// kBatched (default) schedules ONE vectored delivery event per subnet
  /// transmission instead of one event per receiver; the receivers run
  /// back-to-back inside it, in attachment order. This is observationally
  /// identical to per-receiver events: the per-receiver closures would
  /// occupy consecutive (time, sequence) slots that no other event can
  /// interleave. Batching is bypassed whenever it could matter — faulty
  /// subnets (per-receiver RNG draws) and shard backends keep the
  /// per-receiver path. kPerReceiver survives for the differential tests.
  enum class DeliveryMode : std::uint8_t { kBatched, kPerReceiver };
  void SetDeliveryMode(DeliveryMode mode) { delivery_mode_ = mode; }
  DeliveryMode delivery_mode() const { return delivery_mode_; }

  void SetFrameObserver(std::function<void(const FrameEvent&)> observer) {
    frame_observer_ = std::move(observer);
  }

  void ResetCounters();

  // --- Scheduling ----------------------------------------------------------

  EventId Schedule(SimDuration delay, EventFn fn) {
    if (backend_ != nullptr) {
      return backend_->Schedule(backend_->Now() + delay, std::move(fn));
    }
    return events_.ScheduleAt(clock_ + delay, std::move(fn));
  }
  EventId ScheduleAt(SimTime when, EventFn fn) {
    if (backend_ != nullptr) return backend_->Schedule(when, std::move(fn));
    return events_.ScheduleAt(when, std::move(fn));
  }
  bool Cancel(EventId id) {
    return backend_ != nullptr ? backend_->Cancel(id) : events_.Cancel(id);
  }

  const EventQueue& events() const { return events_; }
  const PacketArena& packet_arena() const { return arena_; }

  // --- Shard backend (space-parallel PDES) ---------------------------------

  /// Installs (or, with nullptr, removes) a shard backend. Must happen
  /// before any event is scheduled: the serial queue has to be empty and
  /// the clock at zero, because pending state cannot migrate engines.
  void InstallShardBackend(ShardBackend* backend);
  ShardBackend* shard_backend() const { return backend_; }

  /// Mutable base arena for the backend's coordinator context (packets
  /// made outside any region). The serial path uses it directly.
  PacketArena& mutable_packet_arena() { return arena_; }

  /// Delivers a datagram to `receiver` exactly like the tail of frame
  /// delivery (down-check, drop accounting, agent OnDatagram). Public so
  /// a shard backend can inject deliveries that crossed regions as byte
  /// copies.
  void InjectDelivery(NodeId receiver, VifIndex vif, Ipv4Address link_src,
                      Ipv4Address link_dst,
                      std::span<const std::uint8_t> datagram);

  /// Forwards to the backend's ExchangeAffinity; -1 no-op without one.
  std::int32_t ExchangeAffinity(std::int32_t node) {
    return backend_ != nullptr ? backend_->ExchangeAffinity(node) : -1;
  }

  /// Runs events until `until` (inclusive); leaves later events queued.
  void RunUntil(SimTime until);

  /// Runs until the event queue drains or `max_events` have executed.
  /// Protocol keepalive timers re-arm forever, so most tests use RunUntil.
  void RunUntilIdle(std::size_t max_events = 1'000'000);

 private:
  void DeliverFrame(NodeId receiver, VifIndex vif, Ipv4Address link_src,
                    Ipv4Address link_dst, const PacketRef& datagram);

  /// Receiver fan-out shared by both SendDatagram overloads: per-receiver
  /// fault application and delivery scheduling (or one batched event).
  bool FanOut(NodeId node, VifIndex vif, const Interface& out,
              SubnetRecord& s, SubnetCounters& counters,
              Ipv4Address link_dst, const PacketRef& shared);

  /// Bumps the topology epoch and journals the scoped change.
  void RecordTopologyChange(TopologyChange::Kind kind, SubnetId subnet,
                            NodeId node, bool up);

  /// Counter sink for `s` in the current execution context.
  SubnetCounters& counters_for(SubnetRecord& s) {
    return backend_ != nullptr ? backend_->CountersFor(s) : s.counters;
  }
  /// Packet arena of the current execution context.
  PacketArena& active_arena() {
    return backend_ != nullptr ? backend_->ContextArena() : arena_;
  }

  /// The frame ref currently being delivered (set around the agent
  /// callback in DeliverFrame; see PatchableDeliveryRef). Never set for
  /// batched deliveries — their one ref feeds several receivers.
  const PacketRef* current_delivery_ = nullptr;

  SimTime clock_ = 0;
  PacketArena arena_;  // outlives events_: queued closures hold PacketRefs
  EventQueue events_;
  Rng rng_;
  std::vector<NodeRecord> nodes_;
  std::vector<SubnetRecord> subnets_;
  std::uint64_t topology_epoch_ = 0;
  /// Ring of recent scoped changes, one per epoch bump, contiguous up to
  /// topology_epoch(); trimmed from the front when it outgrows the cap.
  std::vector<TopologyChange> topology_journal_;
  std::function<void(const FrameEvent&)> frame_observer_;
  obs::Registry* metrics_ = nullptr;
  obs::TraceBuffer* trace_ = nullptr;
  int trace_pid_ = 1;
  std::uint64_t seed_ = 1;
  ShardBackend* backend_ = nullptr;
  DeliveryMode delivery_mode_ = DeliveryMode::kBatched;
};

/// RAII node-affinity marker for code that acts *on behalf of* a node
/// from outside any event — agent Start() hooks, host join/leave/send
/// helpers driven by a test or bench. Under a shard backend the scope
/// pins scheduling, RNG draws, counters, and packets to the node's
/// region, so the work is attributed exactly as if the node itself had
/// executed it; without a backend it is a no-op.
class AffinityScope {
 public:
  AffinityScope(Simulator& sim, NodeId node)
      : sim_(&sim), prev_(sim.ExchangeAffinity(node.value())) {}
  ~AffinityScope() { sim_->ExchangeAffinity(prev_); }

  AffinityScope(const AffinityScope&) = delete;
  AffinityScope& operator=(const AffinityScope&) = delete;

 private:
  Simulator* sim_;
  std::int32_t prev_;
};

}  // namespace cbt::netsim
