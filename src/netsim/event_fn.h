// Small-buffer-optimized event callback.
//
// The simulator hot path schedules millions of short-lived closures
// (frame deliveries, protocol timers). std::function heap-allocates for
// anything beyond two pointers of capture; EventFn stores up to
// kInlineBytes of capture inline so the common closures (a `this`
// pointer, a couple of ids, a PacketRef) never touch the allocator.
// Move-only, like the events it carries.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace cbt::netsim {

class EventFn {
 public:
  /// Sized to fit the frame-delivery closure (this + node/vif ids + two
  /// addresses + a PacketRef) with room to spare; larger captures fall
  /// back to one heap allocation.
  static constexpr std::size_t kInlineBytes = 48;

  EventFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  EventFn(EventFn&& other) noexcept { MoveFrom(other); }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { Reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(buf_); }

  /// Destroys the held closure (releasing captured resources eagerly).
  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* from, void* to);  // move-construct + destroy src
    void (*destroy)(void*);
  };

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      [](void* p) { (*static_cast<Fn*>(p))(); },
      [](void* from, void* to) {
        Fn* src = static_cast<Fn*>(from);
        ::new (to) Fn(std::move(*src));
        src->~Fn();
      },
      [](void* p) { static_cast<Fn*>(p)->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops kHeapOps = {
      [](void* p) { (**static_cast<Fn**>(p))(); },
      [](void* from, void* to) {
        ::new (to) Fn*(*static_cast<Fn**>(from));
      },
      [](void* p) { delete *static_cast<Fn**>(p); },
  };

  void MoveFrom(EventFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(other.buf_, buf_);
      other.ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
};

}  // namespace cbt::netsim
