// Topology construction helpers.
//
// Includes faithful reconstructions of the spec's example networks:
//  * Figure 1 — the 12-router / 15-subnet internetwork every protocol
//    walkthrough in the spec uses (joins, proxy-ack, teardown, forwarding);
//  * Figure 5 — the loop topology used to exercise REJOIN loop detection;
// plus parameterized generators (line, star, grid, binary tree, Waxman
// random graph) for the quantitative experiments.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "netsim/simulator.h"

namespace cbt::netsim {

/// A constructed topology: name→id maps plus role lists.
struct Topology {
  std::map<std::string, NodeId> nodes;
  std::map<std::string, SubnetId> subnets;
  std::vector<NodeId> routers;
  std::vector<NodeId> hosts;
  /// One stub LAN per router (parallel to `routers`) where member hosts can
  /// be attached; empty for topologies that define their own LANs.
  std::vector<SubnetId> router_lans;

  NodeId node(const std::string& name) const { return nodes.at(name); }
  SubnetId subnet(const std::string& name) const { return subnets.at(name); }
};

/// Attaches a new host to `lan` and returns its id.
NodeId AttachHost(Simulator& sim, Topology& topo, SubnetId lan,
                  const std::string& name);

/// The spec's Figure 1 internetwork.
///
/// Routers R1..R12, member hosts A..K, subnets S1..S15 wired so that every
/// protocol narrative in sections 2.5-2.7 and 5 holds:
///  * R1 is the only router on S1 (host A) and S3 (host C);
///  * S4 (host B) has routers R6 (lowest address, hence IGMP querier and
///    D-DR), R2 and R5; R2 and R5 both reach core R4 via R3 on S2, with R2
///    lower-addressed so it wins tie-breaks — producing the proxy-ack
///    scenario of section 2.6;
///  * R4 is the primary-core site with member LANs S5, S6, S7;
///  * R7 serves S9 (host E; the teardown example), R8 serves S10 (host G,
///    the data-forwarding example) and S14, R9 serves memberless S12,
///    R10 serves S13 and S15, R12 hangs off R8 next to R11 on S11.
Topology MakeFigure1(Simulator& sim);

/// The spec's Figure 5 loop topology: ring R3-R4-R5-R6-R3 with R1 (core)
/// reached through R2; static route overrides in the test create the
/// transient loop.
Topology MakeFigure5Loop(Simulator& sim);

/// Chain of `n` routers, each with a stub LAN.
Topology MakeLine(Simulator& sim, int n,
                  SimDuration link_delay = kMillisecond);

/// Hub router with `n` spokes, each spoke with a stub LAN.
Topology MakeStar(Simulator& sim, int n,
                  SimDuration link_delay = kMillisecond);

/// width x height grid of routers, each with a stub LAN.
Topology MakeGrid(Simulator& sim, int width, int height,
                  SimDuration link_delay = kMillisecond);

/// Complete binary tree of routers with `depth` levels (root = level 0).
Topology MakeBinaryTree(Simulator& sim, int depth,
                        SimDuration link_delay = kMillisecond);

struct WaxmanParams {
  int n = 100;
  double alpha = 0.25;  // edge density
  double beta = 0.2;    // locality: smaller = shorter edges only
  std::uint64_t seed = 42;
  /// Link delay scales with Euclidean distance on the unit square:
  /// delay = base + distance * spread.
  SimDuration base_delay = kMillisecond;
  SimDuration delay_spread = 9 * kMillisecond;
};

/// Waxman random graph (the topology model used in the CBT-era multicast
/// evaluations), made connected by stitching a random spanning chain.
Topology MakeWaxman(Simulator& sim, const WaxmanParams& params);

struct TransitStubParams {
  /// Transit core: a small, densely-meshed backbone with slow links.
  int transit_nodes = 6;
  /// Stub domains hanging off random transit routers, each a short chain
  /// of access routers with fast links.
  int stub_domains = 8;
  int stub_size = 3;
  std::uint64_t seed = 42;
  SimDuration transit_delay = 10 * kMillisecond;
  SimDuration stub_delay = 1 * kMillisecond;
};

/// Transit-stub internetwork (the hierarchy the CBT-era evaluations also
/// used): member LANs live in the stubs; cores are typically placed in
/// the transit backbone.
Topology MakeTransitStub(Simulator& sim, const TransitStubParams& params);

}  // namespace cbt::netsim
