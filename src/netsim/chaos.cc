#include "netsim/chaos.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <sstream>

#include "common/random.h"

namespace cbt::netsim {

const char* ChaosEventTypeName(ChaosEventType type) {
  switch (type) {
    case ChaosEventType::kLinkFlap:
      return "link-flap";
    case ChaosEventType::kNodeCrash:
      return "node-crash";
    case ChaosEventType::kPartition:
      return "partition";
  }
  return "?";
}

std::string ChaosEvent::Describe() const {
  std::ostringstream os;
  os << ChaosEventTypeName(type) << " @" << FormatSimTime(at) << " for "
     << FormatSimTime(duration);
  switch (type) {
    case ChaosEventType::kLinkFlap:
      os << " subnet=" << subnet.value();
      break;
    case ChaosEventType::kNodeCrash:
      os << " node=" << node.value();
      break;
    case ChaosEventType::kPartition:
      os << " nodes={";
      for (std::size_t i = 0; i < isolated.size(); ++i) {
        if (i > 0) os << ",";
        os << isolated[i].value();
      }
      os << "}";
      break;
  }
  return os.str();
}

SimTime ChaosPlan::LastRepairTime() const {
  SimTime last = 0;
  for (const ChaosEvent& e : events) last = std::max(last, e.repair_at());
  return last;
}

std::string ChaosPlan::Describe() const {
  std::ostringstream os;
  os << "chaos plan seed=" << seed << " events=" << events.size() << "\n";
  for (const ChaosEvent& e : events) os << "  " << e.Describe() << "\n";
  return os.str();
}

ChaosPlan MakeRandomPlan(std::uint64_t seed, const ChaosPlanParams& params,
                         const std::vector<NodeId>& crashable,
                         const std::vector<SubnetId>& flappable) {
  Rng rng(seed);
  ChaosPlan plan;
  plan.seed = seed;

  struct Class {
    ChaosEventType type;
    double weight;
  };
  std::vector<Class> classes;
  if (params.flap_weight > 0.0 && !flappable.empty()) {
    classes.push_back({ChaosEventType::kLinkFlap, params.flap_weight});
  }
  if (params.crash_weight > 0.0 && !crashable.empty()) {
    classes.push_back({ChaosEventType::kNodeCrash, params.crash_weight});
  }
  if (params.partition_weight > 0.0 && !crashable.empty()) {
    classes.push_back({ChaosEventType::kPartition, params.partition_weight});
  }
  if (classes.empty()) return plan;
  double total_weight = 0.0;
  for (const Class& c : classes) total_weight += c.weight;

  SimTime next_at = params.start;
  for (int i = 0; i < params.event_count; ++i) {
    ChaosEvent e;
    double pick = rng.NextDouble() * total_weight;
    e.type = classes.back().type;
    for (const Class& c : classes) {
      if (pick < c.weight) {
        e.type = c.type;
        break;
      }
      pick -= c.weight;
    }
    e.at = next_at;
    e.duration = rng.NextInRange(params.min_down, params.max_down);
    switch (e.type) {
      case ChaosEventType::kLinkFlap:
        e.subnet = flappable[rng.NextBelow(flappable.size())];
        break;
      case ChaosEventType::kNodeCrash:
        e.node = crashable[rng.NextBelow(crashable.size())];
        break;
      case ChaosEventType::kPartition: {
        const std::size_t cap = std::min<std::size_t>(
            static_cast<std::size_t>(std::max(params.max_partition_size, 1)),
            crashable.size());
        const std::size_t size =
            1 + static_cast<std::size_t>(rng.NextBelow(cap));
        for (const std::size_t idx :
             rng.SampleWithoutReplacement(crashable.size(), size)) {
          e.isolated.push_back(crashable[idx]);
        }
        std::sort(e.isolated.begin(), e.isolated.end());
        break;
      }
    }
    next_at = e.repair_at() + rng.NextInRange(params.min_gap, params.max_gap);
    plan.events.push_back(std::move(e));
  }
  return plan;
}

ChaosInjector::ChaosInjector(Simulator& sim, Hooks hooks)
    : sim_(&sim), hooks_(std::move(hooks)) {}

void ChaosInjector::Arm(ChaosPlan plan) {
  assert(plan_.events.empty() && "Arm may be called once per injector");
  plan_ = std::move(plan);
  severed_.assign(plan_.events.size(), {});
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const ChaosEvent& e = plan_.events[i];
    sim_->ScheduleAt(e.at, [this, i] { Inject(i); });
    sim_->ScheduleAt(e.repair_at(), [this, i] { Repair(i); });
  }
}

void ChaosInjector::Inject(std::size_t index) {
  const ChaosEvent& e = plan_.events[index];
  // txn = plan index + 1 pairs this Begin with its Repair() End even when
  // several same-type faults overlap (name+node alone is ambiguous).
  OBS_TRACE(sim_->trace(), .time = sim_->Now(),
            .kind = obs::TraceKind::kChaos,
            .phase = obs::TracePhase::kBegin,
            .name = ChaosEventTypeName(e.type), .node = e.node.value(),
            .arg_a = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(e.subnet.value())),
            .arg_b = static_cast<std::uint64_t>(e.duration),
            .txn = static_cast<std::uint64_t>(index) + 1);
  switch (e.type) {
    case ChaosEventType::kLinkFlap:
      sim_->SetSubnetUp(e.subnet, false);
      break;
    case ChaosEventType::kNodeCrash:
      sim_->SetNodeUp(e.node, false);
      if (hooks_.on_crash) hooks_.on_crash(e.node);
      break;
    case ChaosEventType::kPartition: {
      // Sever every interface that attaches an isolated node to a subnet
      // also serving the other side; record exactly what was cut (and was
      // up) so heal restores only that.
      const std::set<NodeId> inside(e.isolated.begin(), e.isolated.end());
      for (const NodeId node : e.isolated) {
        for (const Interface& iface : sim_->node(node).interfaces) {
          if (!iface.up) continue;
          const SubnetRecord& s = sim_->subnet(iface.subnet);
          const bool crosses = std::any_of(
              s.attachments.begin(), s.attachments.end(),
              [&](const auto& att) { return !inside.contains(att.first); });
          if (!crosses) continue;
          sim_->SetInterfaceUp(node, iface.vif, false);
          severed_[index].emplace_back(node, iface.vif);
        }
      }
      break;
    }
  }
  if (hooks_.observer) hooks_.observer(e, /*begin=*/true);
}

void ChaosInjector::Repair(std::size_t index) {
  const ChaosEvent& e = plan_.events[index];
  OBS_TRACE(sim_->trace(), .time = sim_->Now(),
            .kind = obs::TraceKind::kChaos, .phase = obs::TracePhase::kEnd,
            .name = ChaosEventTypeName(e.type), .node = e.node.value(),
            .arg_a = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(e.subnet.value())),
            .txn = static_cast<std::uint64_t>(index) + 1);
  switch (e.type) {
    case ChaosEventType::kLinkFlap:
      sim_->SetSubnetUp(e.subnet, true);
      break;
    case ChaosEventType::kNodeCrash:
      sim_->SetNodeUp(e.node, true);
      if (hooks_.on_restart) hooks_.on_restart(e.node);
      break;
    case ChaosEventType::kPartition:
      for (const auto& [node, vif] : severed_[index]) {
        sim_->SetInterfaceUp(node, vif, true);
      }
      severed_[index].clear();
      break;
  }
  if (hooks_.observer) hooks_.observer(e, /*begin=*/false);
}

}  // namespace cbt::netsim
