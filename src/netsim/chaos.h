// Deterministic fault-injection ("chaos") scheduling on top of Simulator.
//
// A ChaosPlan is a seeded, pre-generated schedule of timed fault events —
// link flaps (subnet down/up), router crashes with full protocol-state
// loss plus later restart, and partition/heal of node sets. The
// ChaosInjector arms a plan on the event queue, so chaos runs are exactly
// as reproducible as any other simulation: same seed, same plan, same
// byte-for-byte outcome.
//
// The injector itself only manipulates netsim state (node/subnet/interface
// up flags). Protocol-level consequences of a crash — a CBT router losing
// its FIB and timers, then re-acquiring state through normal protocol
// means — are delegated to hooks the protocol harness provides (see
// core::CbtDomain::ChaosHooks()).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.h"
#include "netsim/simulator.h"

namespace cbt::netsim {

enum class ChaosEventType {
  kLinkFlap,   // subnet down for `duration`, then back up
  kNodeCrash,  // node down + state loss for `duration`, then restart
  kPartition,  // node set cut off from the rest for `duration`, then heal
};

const char* ChaosEventTypeName(ChaosEventType type);

struct ChaosEvent {
  ChaosEventType type = ChaosEventType::kLinkFlap;
  SimTime at = 0;            // fault-injection time
  SimDuration duration = 0;  // how long the fault holds before repair
  SubnetId subnet;           // kLinkFlap target
  NodeId node;               // kNodeCrash target
  std::vector<NodeId> isolated;  // kPartition: the severed node set

  SimTime repair_at() const { return at + duration; }
  std::string Describe() const;
};

struct ChaosPlan {
  std::uint64_t seed = 0;
  std::vector<ChaosEvent> events;  // ordered by `at`, non-overlapping

  /// Repair time of the last event (0 for an empty plan).
  SimTime LastRepairTime() const;
  std::string Describe() const;
};

struct ChaosPlanParams {
  int event_count = 100;
  /// First fault time — leave room for initial protocol convergence.
  SimTime start = 60 * kSecond;
  /// Gap between one event's repair and the next event's injection,
  /// uniform in [min_gap, max_gap]; events never overlap so each
  /// recovery can be measured in isolation.
  SimDuration min_gap = 30 * kSecond;
  SimDuration max_gap = 90 * kSecond;
  /// Fault hold time, uniform in [min_down, max_down].
  SimDuration min_down = 5 * kSecond;
  SimDuration max_down = 30 * kSecond;
  /// Relative frequency of each fault class (any may be zero).
  double flap_weight = 1.0;
  double crash_weight = 1.0;
  double partition_weight = 0.5;
  /// Partitions isolate 1..max_partition_size nodes.
  int max_partition_size = 2;
};

/// Generates a seeded schedule over the given candidate targets. The same
/// (seed, params, candidates) always yields an identical plan. Classes
/// whose candidate list is empty (or whose weight is zero) are skipped.
ChaosPlan MakeRandomPlan(std::uint64_t seed, const ChaosPlanParams& params,
                         const std::vector<NodeId>& crashable,
                         const std::vector<SubnetId>& flappable);

class ChaosInjector {
 public:
  struct Hooks {
    /// Called right after the node is marked down: the agent must lose
    /// all soft/hard protocol state (a real process crash).
    std::function<void(NodeId)> on_crash;
    /// Called right after the node is marked back up: the agent restarts
    /// from scratch and re-acquires state via the protocol.
    std::function<void(NodeId)> on_restart;
    /// Observer for every injection (`begin == true`) and repair.
    std::function<void(const ChaosEvent&, bool begin)> observer;
  };

  explicit ChaosInjector(Simulator& sim, Hooks hooks = {});

  ChaosInjector(const ChaosInjector&) = delete;
  ChaosInjector& operator=(const ChaosInjector&) = delete;

  /// Schedules inject + repair for every event in the plan. May be called
  /// once per injector instance.
  void Arm(ChaosPlan plan);

  const ChaosPlan& plan() const { return plan_; }

 private:
  void Inject(std::size_t index);
  void Repair(std::size_t index);

  Simulator* sim_;
  Hooks hooks_;
  ChaosPlan plan_;
  /// Per-event interfaces severed by a partition, restored on heal.
  std::vector<std::vector<std::pair<NodeId, VifIndex>>> severed_;
};

}  // namespace cbt::netsim
