// Discrete-event scheduler core.
//
// Events are closures ordered by (time, insertion sequence); the sequence
// tie-break makes simultaneous events run in schedule order, which keeps
// every run bit-for-bit deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>

#include "common/types.h"

namespace cbt::netsim {

/// Handle for cancelling a scheduled event (e.g. a protocol timer that was
/// answered before it fired).
using EventId = std::uint64_t;
constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  /// Schedules `fn` at absolute time `when`; returns a cancellation handle.
  EventId ScheduleAt(SimTime when, std::function<void()> fn);

  /// Cancels a pending event; returns false if it already ran/was cancelled.
  bool Cancel(EventId id);

  /// True if no runnable (non-cancelled) events remain.
  bool Empty() const { return pending_.empty(); }

  std::size_t size() const { return pending_.size(); }

  /// Time of the earliest pending event; only valid when !Empty().
  SimTime NextTime();

  /// Pops and runs the earliest event, advancing `clock` to its time.
  /// Returns false if the queue was empty.
  bool RunNext(SimTime& clock);

 private:
  struct Entry {
    SimTime when;
    EventId id;
    std::function<void()> fn;

    // min-heap by (when, id): std::priority_queue is a max-heap, so invert.
    bool operator<(const Entry& other) const {
      if (when != other.when) return when > other.when;
      return id > other.id;
    }
  };

  /// Discards heap entries whose ids were cancelled.
  void DropCancelledHead();

  std::priority_queue<Entry> heap_;
  std::unordered_set<EventId> pending_;  // scheduled, not yet run or cancelled
  EventId next_id_ = 1;
};

}  // namespace cbt::netsim
