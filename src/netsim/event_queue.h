// Discrete-event scheduler core: hierarchical timer wheel + overflow heap.
//
// Events are closures ordered by (time, insertion sequence); the sequence
// tie-break makes simultaneous events run in schedule order, which keeps
// every run bit-for-bit deterministic.
//
// Engine design (Engine::kTimerWheel, the default)
// ------------------------------------------------
// Time is bucketed into ticks of 2^kTickShift microseconds. A hierarchy
// of kLevels wheels with 64 slots each covers the near future: an event
// due `d` ticks ahead lives at the lowest level whose span contains it
// (level k spans 64^(k+1) ticks), in the slot addressed by bits
// [6k, 6k+6) of its absolute tick. Schedule and cancel are O(1): events
// live in a slab with an intrusive doubly-linked list per slot, and the
// EventId encodes (slab index, generation) so Cancel unlinks and frees
// the slot — and destroys the closure — immediately. No tombstones
// accumulate (the former lazy-cancel heap kept dead entries and their
// captures alive until popped). Events beyond the top level's span go to
// an *indexed* binary min-heap (heap position stored in the slab entry,
// so cancellation is a true O(log n) removal).
//
// Execution drains one tick at a time: the earliest occupied slot is
// found with per-level occupancy bitmaps (O(1) per level), higher-level
// slots cascade down as the current tick advances past their span, and
// the events of the due tick are sorted by (time, sequence) before
// running — restoring the exact global order a single heap would give,
// which is what keeps wheel runs byte-identical to the legacy engine.
//
// Engine::kLegacyHeap preserves the original priority_queue +
// tombstone-set implementation. It is a test-only shim: the differential
// tests and the event-engine benchmark run both engines on identical
// workloads to prove ordering parity and measure the speedup.
#pragma once

#include <array>
#include <cstdint>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/thread_guard.h"
#include "common/types.h"
#include "netsim/event_fn.h"

namespace cbt::netsim {

/// Handle for cancelling a scheduled event (e.g. a protocol timer that was
/// answered before it fired). Opaque; 0 is never a valid handle.
using EventId = std::uint64_t;
constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  enum class Engine {
    kTimerWheel,  // production engine
    kLegacyHeap,  // pre-rebuild engine, kept for differential tests/bench
  };

  explicit EventQueue(Engine engine = Engine::kTimerWheel);

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `fn` at absolute time `when`; returns a cancellation handle.
  EventId ScheduleAt(SimTime when, EventFn fn);

  /// Cancels a pending event; returns false if it already ran/was
  /// cancelled. Cancellation reclaims the slot and destroys the closure
  /// eagerly (wheel engine).
  bool Cancel(EventId id);

  /// True if no runnable (non-cancelled) events remain.
  bool Empty() const { return live_ == 0; }

  std::size_t size() const { return live_; }

  /// Time of the earliest pending event; only valid when !Empty().
  SimTime NextTime();

  /// Pops and runs the earliest event, advancing `clock` to its time.
  /// Returns false if the queue was empty.
  bool RunNext(SimTime& clock);

  Engine engine() const { return engine_; }

  // --- Accounting (memory-bound regression tests & benches) --------------

  /// Wheel engine: slots ever allocated in the event slab (bounds resident
  /// memory; reused across schedule/cancel cycles). Legacy engine: heap
  /// entries including cancelled tombstones.
  std::size_t slot_capacity() const;

  /// Events parked in the far-future overflow heap (wheel engine).
  std::size_t overflow_heap_size() const { return heap_.size(); }

 private:
  // --- Wheel engine ------------------------------------------------------

  static constexpr int kTickShift = 10;  // 1024 us per tick
  static constexpr int kLevelBits = 6;   // 64 slots per level
  static constexpr int kSlots = 1 << kLevelBits;
  static constexpr int kLevels = 4;      // horizon 64^4 ticks (~4.8 hours)
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  enum State : std::uint8_t { kFree, kWheel, kHeap, kDue };

  struct Event {
    SimTime when = 0;
    std::uint64_t seq = 0;
    EventFn fn;
    std::uint32_t gen = 0;
    std::uint32_t next = kNil;  // slot list link / free list link
    std::uint32_t prev = kNil;
    std::uint32_t heap_pos = kNil;
    std::uint8_t state = kFree;
    std::uint8_t level = 0;
    std::uint8_t slot = 0;
  };

  struct Level {
    std::array<std::uint32_t, kSlots> head;
    std::uint64_t occupancy = 0;
  };

  struct DueEntry {
    SimTime when;
    std::uint64_t seq;
    std::uint32_t index;
  };

  static std::int64_t TickOf(SimTime when) { return when >> kTickShift; }

  std::uint32_t AllocSlot();
  void FreeSlot(std::uint32_t index);
  void InsertIntoWheel(std::uint32_t index);
  void UnlinkFromSlot(std::uint32_t index);
  void InsertDueSorted(std::uint32_t index);
  void HeapPush(std::uint32_t index);
  void HeapRemove(std::uint32_t pos);
  void HeapSiftUp(std::uint32_t pos);
  void HeapSiftDown(std::uint32_t pos);
  bool HeapLess(std::uint32_t a, std::uint32_t b) const;

  /// Moves the contents of (level, slot) plus all overflow-heap events of
  /// tick `tick` into due_, sorted by (when, seq).
  void CollectTick(std::int64_t tick, int level, int slot);

  /// Ensures due_[due_pos_] is a live event, cascading/refilling as
  /// needed. Returns false when the queue is empty.
  bool EnsureDueFront();
  void RefillDue();

  /// Slab links and generation counters are non-atomic: one queue
  /// belongs to one replica. Debug builds abort on cross-thread use
  /// (checked at the public entry points: ScheduleAt/Cancel/RunNext).
  ThreadOwnershipGuard guard_;
  Engine engine_;
  std::size_t live_ = 0;
  std::uint64_t next_seq_ = 0;

  std::vector<Event> events_;
  std::uint32_t free_head_ = kNil;
  std::array<Level, kLevels> levels_;
  std::vector<std::uint32_t> heap_;  // slab indices, indexed min-heap
  std::int64_t cur_tick_ = 0;
  std::vector<DueEntry> due_;
  std::size_t due_pos_ = 0;

  // --- Legacy engine (test-only shim) ------------------------------------

  struct LegacyEntry {
    SimTime when;
    EventId id;
    mutable EventFn fn;  // moved out at pop time

    // min-heap by (when, id): std::priority_queue is a max-heap, so invert.
    bool operator<(const LegacyEntry& other) const {
      if (when != other.when) return when > other.when;
      return id > other.id;
    }
  };

  void LegacyDropCancelledHead();

  std::priority_queue<LegacyEntry> legacy_heap_;
  std::unordered_set<EventId> legacy_pending_;
  EventId legacy_next_id_ = 1;
};

}  // namespace cbt::netsim
