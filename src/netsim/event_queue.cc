#include "netsim/event_queue.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <utility>

namespace cbt::netsim {
namespace {

constexpr EventId MakeId(std::uint32_t index, std::uint32_t gen) {
  return (static_cast<EventId>(index) << 32) | gen;
}

bool DueLess(const SimTime when_a, const std::uint64_t seq_a,
             const SimTime when_b, const std::uint64_t seq_b) {
  if (when_a != when_b) return when_a < when_b;
  return seq_a < seq_b;
}

}  // namespace

EventQueue::EventQueue(Engine engine) : engine_(engine) {
  for (Level& level : levels_) level.head.fill(kNil);
}

std::uint32_t EventQueue::AllocSlot() {
  std::uint32_t index;
  if (free_head_ != kNil) {
    index = free_head_;
    free_head_ = events_[index].next;
  } else {
    index = static_cast<std::uint32_t>(events_.size());
    events_.emplace_back();
  }
  Event& ev = events_[index];
  ++ev.gen;                    // ids of prior incarnations become stale
  if (ev.gen == 0) ++ev.gen;   // wrap: keep MakeId(0, gen) != kInvalidEventId
  ev.next = ev.prev = kNil;
  ev.heap_pos = kNil;
  return index;
}

void EventQueue::FreeSlot(std::uint32_t index) {
  Event& ev = events_[index];
  ev.fn.Reset();  // release captured resources now, not when popped
  ev.state = kFree;
  ev.next = free_head_;
  free_head_ = index;
}

EventId EventQueue::ScheduleAt(SimTime when, EventFn fn) {
  guard_.AssertOwned("netsim::EventQueue");
  ++live_;
  if (engine_ == Engine::kLegacyHeap) {
    const EventId id = legacy_next_id_++;
    legacy_heap_.push(LegacyEntry{when, id, std::move(fn)});
    legacy_pending_.insert(id);
    return id;
  }
  assert(when >= 0 && "wheel engine models nonnegative sim time");
  const std::uint32_t index = AllocSlot();
  Event& ev = events_[index];
  ev.when = when;
  ev.seq = ++next_seq_;
  ev.fn = std::move(fn);
  if (TickOf(when) <= cur_tick_) {
    // Lands in the tick currently being drained (e.g. an event scheduling
    // a same-time follow-up): merge into the sorted due run directly.
    InsertDueSorted(index);
  } else {
    InsertIntoWheel(index);
  }
  return MakeId(index, ev.gen);
}

void EventQueue::InsertIntoWheel(std::uint32_t index) {
  Event& ev = events_[index];
  const std::int64_t tick = TickOf(ev.when);
  for (int k = 0; k < kLevels; ++k) {
    const int span_shift = kLevelBits * (k + 1);
    if ((tick >> span_shift) != (cur_tick_ >> span_shift)) continue;
    const int slot =
        static_cast<int>((tick >> (kLevelBits * k)) & (kSlots - 1));
    Level& level = levels_[k];
    ev.state = kWheel;
    ev.level = static_cast<std::uint8_t>(k);
    ev.slot = static_cast<std::uint8_t>(slot);
    ev.prev = kNil;
    ev.next = level.head[slot];
    if (ev.next != kNil) events_[ev.next].prev = index;
    level.head[slot] = index;
    level.occupancy |= std::uint64_t{1} << slot;
    return;
  }
  // Beyond the top level's span: far-future overflow heap.
  ev.state = kHeap;
  HeapPush(index);
}

void EventQueue::UnlinkFromSlot(std::uint32_t index) {
  Event& ev = events_[index];
  Level& level = levels_[ev.level];
  if (ev.prev != kNil) {
    events_[ev.prev].next = ev.next;
  } else {
    level.head[ev.slot] = ev.next;
  }
  if (ev.next != kNil) events_[ev.next].prev = ev.prev;
  if (level.head[ev.slot] == kNil) {
    level.occupancy &= ~(std::uint64_t{1} << ev.slot);
  }
}

void EventQueue::InsertDueSorted(std::uint32_t index) {
  Event& ev = events_[index];
  ev.state = kDue;
  const DueEntry entry{ev.when, ev.seq, index};
  const auto it = std::upper_bound(
      due_.begin() + static_cast<std::ptrdiff_t>(due_pos_), due_.end(), entry,
      [](const DueEntry& a, const DueEntry& b) {
        return DueLess(a.when, a.seq, b.when, b.seq);
      });
  due_.insert(it, entry);
}

bool EventQueue::HeapLess(std::uint32_t a, std::uint32_t b) const {
  const Event& ea = events_[a];
  const Event& eb = events_[b];
  return DueLess(ea.when, ea.seq, eb.when, eb.seq);
}

void EventQueue::HeapPush(std::uint32_t index) {
  events_[index].heap_pos = static_cast<std::uint32_t>(heap_.size());
  heap_.push_back(index);
  HeapSiftUp(static_cast<std::uint32_t>(heap_.size() - 1));
}

void EventQueue::HeapSiftUp(std::uint32_t pos) {
  while (pos > 0) {
    const std::uint32_t parent = (pos - 1) / 2;
    if (!HeapLess(heap_[pos], heap_[parent])) break;
    std::swap(heap_[pos], heap_[parent]);
    events_[heap_[pos]].heap_pos = pos;
    events_[heap_[parent]].heap_pos = parent;
    pos = parent;
  }
}

void EventQueue::HeapSiftDown(std::uint32_t pos) {
  const auto n = static_cast<std::uint32_t>(heap_.size());
  for (;;) {
    std::uint32_t smallest = pos;
    const std::uint32_t left = 2 * pos + 1;
    const std::uint32_t right = 2 * pos + 2;
    if (left < n && HeapLess(heap_[left], heap_[smallest])) smallest = left;
    if (right < n && HeapLess(heap_[right], heap_[smallest])) smallest = right;
    if (smallest == pos) break;
    std::swap(heap_[pos], heap_[smallest]);
    events_[heap_[pos]].heap_pos = pos;
    events_[heap_[smallest]].heap_pos = smallest;
    pos = smallest;
  }
}

void EventQueue::HeapRemove(std::uint32_t pos) {
  const auto last = static_cast<std::uint32_t>(heap_.size() - 1);
  if (pos != last) {
    heap_[pos] = heap_[last];
    events_[heap_[pos]].heap_pos = pos;
    heap_.pop_back();
    HeapSiftUp(pos);
    HeapSiftDown(pos);
  } else {
    heap_.pop_back();
  }
}

bool EventQueue::Cancel(EventId id) {
  guard_.AssertOwned("netsim::EventQueue");
  if (engine_ == Engine::kLegacyHeap) {
    // The heap entry stays behind and is skipped lazily when it surfaces
    // (the known tombstone leak the wheel engine fixes).
    if (legacy_pending_.erase(id) == 0) return false;
    --live_;
    return true;
  }
  const auto index = static_cast<std::uint32_t>(id >> 32);
  const auto gen = static_cast<std::uint32_t>(id);
  if (id == kInvalidEventId || index >= events_.size()) return false;
  Event& ev = events_[index];
  if (ev.state == kFree || ev.gen != gen) return false;
  switch (ev.state) {
    case kWheel:
      UnlinkFromSlot(index);
      break;
    case kHeap:
      HeapRemove(ev.heap_pos);
      break;
    case kDue:
      // The DueEntry keeps its (when, seq) key and is skipped at pop time
      // (bounded by the current tick's backlog, not the whole queue).
      break;
    default:
      break;
  }
  FreeSlot(index);
  --live_;
  return true;
}

void EventQueue::CollectTick(std::int64_t tick, int level, int slot) {
  cur_tick_ = tick;
  const auto begin = static_cast<std::ptrdiff_t>(due_.size());
  if (level >= 0) {
    Level& lv = levels_[level];
    std::uint32_t node = lv.head[slot];
    lv.head[slot] = kNil;
    lv.occupancy &= ~(std::uint64_t{1} << slot);
    while (node != kNil) {
      Event& ev = events_[node];
      const std::uint32_t next = ev.next;
      ev.state = kDue;
      due_.push_back(DueEntry{ev.when, ev.seq, node});
      node = next;
    }
  }
  // Far-future events whose time has come share the tick with the wheel's.
  while (!heap_.empty() && TickOf(events_[heap_.front()].when) == tick) {
    const std::uint32_t index = heap_.front();
    HeapRemove(0);
    Event& ev = events_[index];
    ev.state = kDue;
    ev.heap_pos = kNil;
    due_.push_back(DueEntry{ev.when, ev.seq, index});
  }
  // Restore the exact (time, sequence) order a global heap would give.
  std::sort(due_.begin() + begin, due_.end(),
            [](const DueEntry& a, const DueEntry& b) {
              return DueLess(a.when, a.seq, b.when, b.seq);
            });
}

void EventQueue::RefillDue() {
  for (;;) {
    int level = -1;
    for (int k = 0; k < kLevels; ++k) {
      if (levels_[k].occupancy != 0) {
        level = k;
        break;
      }
    }
    const bool have_heap = !heap_.empty();
    const std::int64_t heap_tick =
        have_heap ? TickOf(events_[heap_.front()].when) : 0;
    if (level < 0) {
      assert(have_heap && "RefillDue requires pending events");
      CollectTick(heap_tick, -1, -1);
      return;
    }
    // All level-k events share cur_tick_'s high bits above the level span
    // (cascade invariant), so the lowest occupied level holds the
    // earliest events and the lowest occupied slot bounds them below.
    const int slot = std::countr_zero(levels_[level].occupancy);
    const int low_shift = kLevelBits * level;
    const int span_shift = kLevelBits * (level + 1);
    const std::int64_t base =
        ((cur_tick_ >> span_shift) << span_shift) |
        (static_cast<std::int64_t>(slot) << low_shift);
    if (have_heap && heap_tick < base) {
      CollectTick(heap_tick, -1, -1);
      return;
    }
    if (level == 0) {
      CollectTick(base, 0, slot);
      return;
    }
    // Cascade: advance to the slot's span (nothing pending is earlier)
    // and redistribute its events into lower levels.
    cur_tick_ = base;
    Level& lv = levels_[level];
    std::uint32_t node = lv.head[slot];
    lv.head[slot] = kNil;
    lv.occupancy &= ~(std::uint64_t{1} << slot);
    while (node != kNil) {
      const std::uint32_t next = events_[node].next;
      InsertIntoWheel(node);
      node = next;
    }
  }
}

bool EventQueue::EnsureDueFront() {
  for (;;) {
    while (due_pos_ < due_.size()) {
      const DueEntry& e = due_[due_pos_];
      const Event& ev = events_[e.index];
      if (ev.state == kDue && ev.seq == e.seq) return true;
      ++due_pos_;  // cancelled entry; its slot was already reclaimed
    }
    due_.clear();
    due_pos_ = 0;
    if (live_ == 0) return false;
    RefillDue();
  }
}

void EventQueue::LegacyDropCancelledHead() {
  while (!legacy_heap_.empty() &&
         !legacy_pending_.contains(legacy_heap_.top().id)) {
    legacy_heap_.pop();
  }
}

SimTime EventQueue::NextTime() {
  if (engine_ == Engine::kLegacyHeap) {
    LegacyDropCancelledHead();
    assert(!legacy_heap_.empty());
    return legacy_heap_.top().when;
  }
  const bool have = EnsureDueFront();
  assert(have && "NextTime requires a pending event");
  (void)have;
  return due_[due_pos_].when;
}

bool EventQueue::RunNext(SimTime& clock) {
  guard_.AssertOwned("netsim::EventQueue");
  if (engine_ == Engine::kLegacyHeap) {
    LegacyDropCancelledHead();
    if (legacy_heap_.empty()) return false;
    const LegacyEntry& top = legacy_heap_.top();
    EventFn fn = std::move(top.fn);  // fn is mutable; about to be popped
    const SimTime when = top.when;
    const EventId id = top.id;
    legacy_heap_.pop();
    legacy_pending_.erase(id);
    --live_;
    assert(when >= clock && "events must not be scheduled in the past");
    clock = when;
    fn();
    return true;
  }
  if (!EnsureDueFront()) return false;
  const DueEntry entry = due_[due_pos_++];
  EventFn fn = std::move(events_[entry.index].fn);
  FreeSlot(entry.index);
  --live_;
  assert(entry.when >= clock && "events must not be scheduled in the past");
  clock = entry.when;
  fn();
  return true;
}

std::size_t EventQueue::slot_capacity() const {
  return engine_ == Engine::kLegacyHeap ? legacy_heap_.size()
                                        : events_.size();
}

}  // namespace cbt::netsim
