#include "netsim/event_queue.h"

#include <cassert>
#include <utility>

namespace cbt::netsim {

EventId EventQueue::ScheduleAt(SimTime when, std::function<void()> fn) {
  const EventId id = next_id_++;
  heap_.push(Entry{when, id, std::move(fn)});
  pending_.insert(id);
  return id;
}

bool EventQueue::Cancel(EventId id) {
  // The heap entry stays behind and is skipped lazily when it surfaces.
  return pending_.erase(id) > 0;
}

void EventQueue::DropCancelledHead() {
  while (!heap_.empty() && !pending_.contains(heap_.top().id)) {
    heap_.pop();
  }
}

SimTime EventQueue::NextTime() {
  DropCancelledHead();
  assert(!heap_.empty());
  return heap_.top().when;
}

bool EventQueue::RunNext(SimTime& clock) {
  DropCancelledHead();
  if (heap_.empty()) return false;
  // priority_queue::top() is const; the entry is about to be popped, so
  // moving the closure out is safe.
  Entry entry = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  pending_.erase(entry.id);
  assert(entry.when >= clock && "events must not be scheduled in the past");
  clock = entry.when;
  entry.fn();
  return true;
}

}  // namespace cbt::netsim
