#include "routing/route_manager.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>
#include <tuple>

namespace cbt::routing {
namespace {

constexpr double kEps = 1e-9;

// Margin used by the warm-keep test. A table is only kept warm when every
// hypothetical new path is worse than the existing route by at least this
// much, so no ApproxEqual tie (kEps) can form even under floating-point
// summation noise. Widening it only dirties more tables — never wrong.
constexpr double kWarmMargin = 1e-6;

bool ApproxEqual(double a, double b) { return std::fabs(a - b) < kEps; }

}  // namespace

// ---------------------------------------------------------------------------
// Invalidation
// ---------------------------------------------------------------------------

void RouteManager::SyncTopology() {
  const std::uint64_t epoch = sim_->topology_epoch();
  const bool sized_ok = ever_synced_ && tables_.size() == sim_->node_count() &&
                        synced_subnet_count_ == sim_->subnet_count();
  if (sized_ok && epoch == synced_epoch_) return;

  if (!sized_ok) {
    // Nodes or subnets were added (construction phase, no epoch bump):
    // table/bitset dimensions are stale, so start over.
    tables_.assign(sim_->node_count(), NodeRoutes{});
    synced_subnet_count_ = sim_->subnet_count();
    ++stats_.full_invalidations;
  } else if (mode_ == Mode::kEager) {
    InvalidateAllTables();
  } else if (const auto changes = sim_->ChangesSince(synced_epoch_)) {
    ApplyScopedChanges(*changes);
  } else {
    // Fell behind the bounded journal; assume everything changed.
    InvalidateAllTables();
  }
  synced_epoch_ = epoch;
  ever_synced_ = true;

  if (mode_ == Mode::kEager) {
    // Historical behaviour: the first query after a topology change
    // recomputes every source, so eager runs reproduce the pre-lazy cost
    // profile exactly (the differential suite pins lazy against this).
    for (std::size_t i = 0; i < tables_.size(); ++i) {
      if (!tables_[i].valid) {
        ComputeFrom(NodeId(static_cast<std::int32_t>(i)));
      }
    }
  }
}

void RouteManager::InvalidateAllTables() {
  ++stats_.full_invalidations;
  std::uint64_t dirtied = 0;
  for (NodeRoutes& t : tables_) {
    if (t.valid) {
      t.valid = false;
      ++stats_.tables_dirtied;
      ++dirtied;
    }
  }
  OBS_TRACE(sim_->trace(), .time = sim_->Now(),
            .kind = obs::TraceKind::kRouting, .name = "full-invalidation",
            .arg_a = dirtied,
            .arg_b = static_cast<std::uint64_t>(tables_.size()));
}

void RouteManager::Invalidate() {
  tables_.clear();
  ever_synced_ = false;
}

void RouteManager::ApplyScopedChanges(
    std::span<const netsim::TopologyChange> changes) {
  using netsim::TopologyChange;
  for (const TopologyChange& c : changes) {
    if (c.kind == TopologyChange::Kind::kAttach) {
      // Attachments alter addressing and subnet membership wholesale;
      // this is a construction-time event, precision isn't worth it.
      InvalidateAllTables();
      return;
    }
  }

  // Per change, the table must be recomputed ("dirties") unless we can
  // prove the change cannot alter its shortest-path tree:
  //  * a *down* on subnet S is invisible unless some chosen path
  //    traverses S (the used_subnets bitset);
  //  * an *up* on subnet S is invisible unless a path entering S could
  //    be as cheap as an existing route (UpMayImprove);
  //  * a node change scopes to every subnet the node attaches to, and a
  //    change to the table's own source always dirties it (the checks
  //    can't see through an all-infinity node-down table).
  // Warm survivors still need their route *to* each scoped subnet
  // patched, since to_subnet liveness is evaluated at compute time.
  const auto dirties = [&](const NodeRoutes& t, NodeId src, SubnetId s,
                           bool up) {
    return up ? UpMayImprove(t, src, s) : t.Uses(s);
  };

  std::vector<SubnetId> patch;
  for (std::size_t i = 0; i < tables_.size(); ++i) {
    NodeRoutes& table = tables_[i];
    if (!table.valid) continue;
    const NodeId source(static_cast<std::int32_t>(i));
    bool dirty = false;
    patch.clear();
    for (const TopologyChange& c : changes) {
      if (c.kind == TopologyChange::Kind::kNodeState) {
        if (c.node == source) {
          dirty = true;
          break;
        }
        for (const netsim::Interface& iface : sim_->node(c.node).interfaces) {
          if (dirties(table, source, iface.subnet, c.up)) {
            dirty = true;
            break;
          }
          patch.push_back(iface.subnet);
        }
        if (dirty) break;
      } else {
        if (dirties(table, source, c.subnet, c.up)) {
          dirty = true;
          break;
        }
        patch.push_back(c.subnet);
      }
    }
    if (dirty) {
      table.valid = false;
      ++stats_.tables_dirtied;
      OBS_TRACE_VERBOSE(sim_->trace(), .time = sim_->Now(),
                        .kind = obs::TraceKind::kRouting,
                        .name = "table-dirtied", .node = source.value());
      continue;
    }
    if (!patch.empty()) {
      std::sort(patch.begin(), patch.end(),
                [](SubnetId a, SubnetId b) { return a.value() < b.value(); });
      patch.erase(std::unique(patch.begin(), patch.end()), patch.end());
      for (const SubnetId s : patch) RecomputeSubnetTail(table, source, s);
    }
    ++stats_.tables_kept_warm;
  }
}

bool RouteManager::UpMayImprove(const NodeRoutes& table, NodeId source,
                                SubnetId sid) const {
  const netsim::SubnetRecord& s = sim_->subnet(sid);
  if (!s.up) return false;  // net effect of the batch: still down

  // Cheapest cost at which any path out of `source` can enter S, per the
  // table's (pre-change) distances. Prefixes of a hypothetical new path
  // use pre-change edges only, so pre-change distances bound them.
  double enter = kInfinity;
  for (const auto& [z, z_vif] : s.attachments) {
    const netsim::Interface& zi = sim_->interface(z, z_vif);
    if (!zi.up || !sim_->node(z).up) continue;
    if (z != source && !sim_->node(z).is_router) continue;  // no host transit
    const double base =
        table.to_node[static_cast<std::size_t>(z.value())].cost;
    if (base == kInfinity) continue;
    enter = std::min(enter, base + zi.cost);
  }
  if (enter == kInfinity) return false;  // S unreachable from this source

  // A new path crossing S lands on some live attachment at >= enter; if
  // every attachment already has a strictly cheaper route (with margin, so
  // no new tie-break candidates appear either), nothing can change.
  for (const auto& [w, w_vif] : s.attachments) {
    const netsim::Interface& wi = sim_->interface(w, w_vif);
    if (!wi.up || !sim_->node(w).up) continue;
    if (table.to_node[static_cast<std::size_t>(w.value())].cost >
        enter - kWarmMargin) {
      return true;
    }
  }
  return false;
}

void RouteManager::RecomputeSubnetTail(NodeRoutes& table, NodeId source,
                                       SubnetId sid) {
  const auto si = static_cast<std::size_t>(sid.value());
  Route& best = table.to_subnet[si];
  best = Route{kInvalidVif, Ipv4Address{}, kInfinity, 0, 0};
  // A table computed while its source was down is all-infinity and offers
  // no direct-delivery routes either; keep it that way.
  if (table.to_node[static_cast<std::size_t>(source.value())].cost ==
      kInfinity) {
    return;
  }
  const netsim::SubnetRecord& s = sim_->subnet(sid);
  if (!s.up) return;
  for (const auto& [z, z_vif] : s.attachments) {
    const netsim::Interface& zi = sim_->interface(z, z_vif);
    if (!zi.up || !sim_->node(z).up) continue;
    if (z == source) {
      // Directly attached: cost 0, deliver straight onto the subnet.
      best = Route{z_vif, Ipv4Address{}, 0.0, 0, s.delay};
      break;
    }
    // Only routers forward from the subnet entry point onward.
    if (!sim_->node(z).is_router) continue;
    const Route& rz = table.to_node[static_cast<std::size_t>(z.value())];
    if (rz.cost == kInfinity) continue;
    const bool better = rz.cost + kEps < best.cost ||
                        (ApproxEqual(rz.cost, best.cost) &&
                         rz.next_hop.bits() < best.next_hop.bits());
    if (better) best = rz;
  }
}

// ---------------------------------------------------------------------------
// Computation
// ---------------------------------------------------------------------------

RouteManager::NodeRoutes& RouteManager::Freshen(NodeId source) {
  SyncTopology();
  NodeRoutes& table = tables_.at(static_cast<std::size_t>(source.value()));
  if (!table.valid) ComputeFrom(source);
  return table;
}

void RouteManager::ComputeFrom(NodeId source) {
  OBS_TRACE_VERBOSE(sim_->trace(), .time = sim_->Now(),
                    .kind = obs::TraceKind::kRouting, .name = "table-computed",
                    .node = source.value());
  const std::size_t n = sim_->node_count();
  NodeRoutes& table = tables_[static_cast<std::size_t>(source.value())];
  table.to_node.assign(n, Route{kInvalidVif, Ipv4Address{}, kInfinity, 0, 0});
  table.to_subnet.assign(sim_->subnet_count(),
                         Route{kInvalidVif, Ipv4Address{}, kInfinity, 0, 0});
  table.predecessor.assign(n, NodeId{});
  table.used_subnets.assign((sim_->subnet_count() + 63) / 64, 0);
  table.valid = true;
  table.version = ++version_counter_;
  ++stats_.tables_computed;

  if (!sim_->node(source).up) return;

  struct QueueEntry {
    double dist;
    std::uint32_t first_hop_addr;  // deterministic tie-break
    std::int32_t node;
    bool operator>(const QueueEntry& o) const {
      return std::tie(dist, first_hop_addr, node) >
             std::tie(o.dist, o.first_hop_addr, o.node);
    }
  };
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> pq;
  std::vector<bool> done(n, false);
  // Subnet crossed by the chosen final edge into each node. The union over
  // settled nodes covers every subnet any chosen path traverses, because
  // each shortest-path-tree edge is the final edge into its head node.
  std::vector<SubnetId> via_subnet(n, SubnetId{});

  table.to_node[static_cast<std::size_t>(source.value())] =
      Route{kInvalidVif, Ipv4Address{}, 0.0, 0, 0};
  table.predecessor[static_cast<std::size_t>(source.value())] = source;
  pq.push(QueueEntry{0.0, 0, source.value()});

  while (!pq.empty()) {
    const QueueEntry top = pq.top();
    pq.pop();
    const auto u_idx = static_cast<std::size_t>(top.node);
    if (done[u_idx]) continue;
    done[u_idx] = true;

    const NodeId u(top.node);
    const netsim::NodeRecord& u_rec = sim_->node(u);
    // Hosts never transit traffic; only the source itself or routers expand.
    if (u != source && !u_rec.is_router) continue;
    if (!u_rec.up) continue;

    const Route& u_route = table.to_node[u_idx];

    for (const netsim::Interface& iface : u_rec.interfaces) {
      if (!iface.up) continue;
      const netsim::SubnetRecord& s = sim_->subnet(iface.subnet);
      if (!s.up) continue;
      for (const auto& [v, v_vif] : s.attachments) {
        if (v == u) continue;
        const netsim::Interface& in = sim_->interface(v, v_vif);
        if (!in.up || !sim_->node(v).up) continue;

        const double cand_dist = u_route.cost + iface.cost;
        Route cand;
        cand.cost = cand_dist;
        cand.hop_count = u_route.hop_count + 1;
        cand.delay = u_route.delay + s.delay;
        if (u == source) {
          cand.vif = iface.vif;
          cand.next_hop = in.address;
        } else {
          cand.vif = u_route.vif;
          cand.next_hop = u_route.next_hop;
        }

        const auto v_idx = static_cast<std::size_t>(v.value());
        Route& cur = table.to_node[v_idx];
        const bool better =
            cand_dist + kEps < cur.cost ||
            (ApproxEqual(cand_dist, cur.cost) &&
             cand.next_hop.bits() < cur.next_hop.bits());
        if (!done[v_idx] && better) {
          cur = cand;
          table.predecessor[v_idx] = u;
          via_subnet[v_idx] = iface.subnet;
          pq.push(QueueEntry{cand_dist, cand.next_hop.bits(), v.value()});
        }
      }
    }
  }

  for (std::size_t v = 0; v < n; ++v) {
    if (v == static_cast<std::size_t>(source.value())) continue;
    if (table.to_node[v].cost == kInfinity) continue;
    const auto si = static_cast<std::size_t>(via_subnet[v].value());
    table.used_subnets[si >> 6] |= std::uint64_t{1} << (si & 63);
  }

  // Best route per destination subnet: any live attachment point, closest
  // first, lowest first-hop address on ties.
  for (std::size_t si = 0; si < sim_->subnet_count(); ++si) {
    RecomputeSubnetTail(table, source,
                        SubnetId(static_cast<std::int32_t>(si)));
  }
}

// ---------------------------------------------------------------------------
// Destination resolution (LPM)
// ---------------------------------------------------------------------------

void RouteManager::RebuildLpmIndex() {
  lpm_.buckets.clear();
  // Group by mask, longest (numerically largest) first — the same
  // preference order the historical linear scan applied via
  // `mask > best_mask`, with first-wins on exact duplicates.
  std::vector<std::tuple<std::uint32_t, std::uint32_t, std::int32_t>> rows;
  rows.reserve(sim_->subnet_count());
  for (std::size_t si = 0; si < sim_->subnet_count(); ++si) {
    const SubnetAddress& a =
        sim_->subnet(SubnetId(static_cast<std::int32_t>(si))).address;
    rows.emplace_back(a.mask(), a.network().bits(),
                      static_cast<std::int32_t>(si));
  }
  std::sort(rows.begin(), rows.end(), [](const auto& x, const auto& y) {
    if (std::get<0>(x) != std::get<0>(y)) {
      return std::get<0>(x) > std::get<0>(y);  // mask descending
    }
    if (std::get<1>(x) != std::get<1>(y)) {
      return std::get<1>(x) < std::get<1>(y);  // network ascending
    }
    return std::get<2>(x) < std::get<2>(y);  // id ascending
  });
  for (const auto& [mask, network, id] : rows) {
    if (lpm_.buckets.empty() || lpm_.buckets.back().mask != mask) {
      lpm_.buckets.push_back(LpmIndex::Bucket{mask, {}});
    }
    auto& prefixes = lpm_.buckets.back().prefixes;
    if (!prefixes.empty() && prefixes.back().first == network) continue;
    prefixes.emplace_back(network, id);
  }
  lpm_.indexed_subnets = sim_->subnet_count();
  ++lpm_.version;
  ++stats_.lpm_index_rebuilds;
}

std::optional<SubnetId> RouteManager::ResolveSubnetLinear(
    Ipv4Address dest) const {
  std::optional<SubnetId> best;
  std::uint32_t best_mask = 0;
  for (std::size_t si = 0; si < sim_->subnet_count(); ++si) {
    const SubnetId id(static_cast<std::int32_t>(si));
    const netsim::SubnetRecord& s = sim_->subnet(id);
    if (s.address.Contains(dest) && (!best || s.address.mask() > best_mask)) {
      best = id;
      best_mask = s.address.mask();
    }
  }
  return best;
}

std::optional<SubnetId> RouteManager::ResolveSubnet(Ipv4Address dest) {
  if (lpm_mode_ == LpmMode::kLinearScan) return ResolveSubnetLinear(dest);
  if (lpm_.indexed_subnets != sim_->subnet_count()) RebuildLpmIndex();

  static_assert(kLpmCacheSize == 256, "slot hash yields an 8-bit index");
  const std::size_t slot =
      (dest.bits() * 2654435761u) >> 24;  // Fibonacci-ish scatter
  LpmCacheSlot& cached = lpm_cache_[slot];
  if (cached.version == lpm_.version && cached.addr == dest.bits()) {
    ++stats_.lpm_cache_hits;
    if (cached.subnet < 0) return std::nullopt;
    return SubnetId(cached.subnet);
  }

  std::int32_t found = -1;
  for (const auto& bucket : lpm_.buckets) {
    const std::uint32_t key = dest.bits() & bucket.mask;
    const auto it =
        std::lower_bound(bucket.prefixes.begin(), bucket.prefixes.end(),
                         std::pair<std::uint32_t, std::int32_t>{
                             key, std::numeric_limits<std::int32_t>::min()});
    if (it != bucket.prefixes.end() && it->first == key) {
      found = it->second;
      break;
    }
  }
  cached = LpmCacheSlot{dest.bits(), found, lpm_.version};
  if (found < 0) return std::nullopt;
  return SubnetId(found);
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

bool RouteManager::OverrideLive(NodeId node, SubnetId dest_subnet,
                                const Route& route) const {
  // The destination subnet itself must be up — a computed route to a dead
  // subnet returns nullopt, and an override must not outlive that.
  if (!sim_->subnet(dest_subnet).up) return false;
  const netsim::NodeRecord& n = sim_->node(node);
  if (!n.up) return false;
  if (route.vif < 0 ||
      static_cast<std::size_t>(route.vif) >= n.interfaces.size()) {
    return false;
  }
  const netsim::Interface& iface =
      n.interfaces[static_cast<std::size_t>(route.vif)];
  return iface.up && sim_->subnet(iface.subnet).up;
}

std::optional<Route> RouteManager::Lookup(NodeId from, Ipv4Address dest) {
  ++stats_.lookups;
  const auto subnet = ResolveSubnet(dest);
  if (!subnet) return std::nullopt;

  // A static override only applies while its forwarding path is usable;
  // a dead override falls through to the computed route (and revives if
  // the path comes back).
  if (const auto it = overrides_.find({from, *subnet});
      it != overrides_.end() && OverrideLive(from, *subnet, it->second)) {
    return it->second;
  }

  const NodeRoutes& table = Freshen(from);
  Route route = table.to_subnet.at(static_cast<std::size_t>(subnet->value()));
  if (route.cost == kInfinity) return std::nullopt;
  if (route.next_hop.IsUnspecified()) {
    // Directly attached: the link-level next hop is the destination itself.
    route.next_hop = dest;
  }
  return route;
}

bool RouteManager::IsDirectlyAttached(NodeId node, Ipv4Address addr) {
  for (const netsim::Interface& iface : sim_->node(node).interfaces) {
    if (!iface.up) continue;
    const netsim::SubnetRecord& s = sim_->subnet(iface.subnet);
    if (s.up && s.address.Contains(addr)) return true;
  }
  return false;
}

void RouteManager::SetStaticNextHop(NodeId node, SubnetId dest_subnet,
                                    VifIndex vif, Ipv4Address next_hop) {
  Route route;
  route.vif = vif;
  route.next_hop = next_hop;
  route.cost = 1.0;
  route.hop_count = 1;
  overrides_[{node, dest_subnet}] = route;
}

double RouteManager::Distance(NodeId from, NodeId to) {
  return Freshen(from).to_node.at(static_cast<std::size_t>(to.value())).cost;
}

SimDuration RouteManager::PathDelay(NodeId from, NodeId to) {
  return Freshen(from).to_node.at(static_cast<std::size_t>(to.value())).delay;
}

std::vector<NodeId> RouteManager::Path(NodeId from, NodeId to) {
  const NodeRoutes& table = Freshen(from);
  if (table.to_node.at(static_cast<std::size_t>(to.value())).cost ==
      kInfinity) {
    return {};
  }
  std::vector<NodeId> reversed;
  NodeId cur = to;
  while (cur != from) {
    reversed.push_back(cur);
    cur = table.predecessor.at(static_cast<std::size_t>(cur.value()));
    assert(cur.IsValid());
  }
  reversed.push_back(from);
  std::reverse(reversed.begin(), reversed.end());
  return reversed;
}

std::uint64_t RouteManager::TableVersion(NodeId source) {
  return Freshen(source).version;
}

}  // namespace cbt::routing
