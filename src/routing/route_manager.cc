#include "routing/route_manager.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>
#include <tuple>

namespace cbt::routing {
namespace {

constexpr double kEps = 1e-9;

bool ApproxEqual(double a, double b) { return std::fabs(a - b) < kEps; }

}  // namespace

void RouteManager::EnsureFresh() {
  if (computed_epoch_ == sim_->topology_epoch() &&
      tables_.size() == sim_->node_count()) {
    return;
  }
  tables_.assign(sim_->node_count(), NodeRoutes{});
  for (std::size_t i = 0; i < sim_->node_count(); ++i) {
    ComputeFrom(NodeId(static_cast<std::int32_t>(i)));
  }
  computed_epoch_ = sim_->topology_epoch();
}

void RouteManager::ComputeFrom(NodeId source) {
  const std::size_t n = sim_->node_count();
  NodeRoutes& table = tables_[static_cast<std::size_t>(source.value())];
  table.to_node.assign(n, Route{kInvalidVif, Ipv4Address{}, kInfinity, 0, 0});
  table.to_subnet.assign(sim_->subnet_count(),
                         Route{kInvalidVif, Ipv4Address{}, kInfinity, 0, 0});
  table.predecessor.assign(n, NodeId{});

  if (!sim_->node(source).up) return;

  struct QueueEntry {
    double dist;
    std::uint32_t first_hop_addr;  // deterministic tie-break
    std::int32_t node;
    bool operator>(const QueueEntry& o) const {
      return std::tie(dist, first_hop_addr, node) >
             std::tie(o.dist, o.first_hop_addr, o.node);
    }
  };
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> pq;
  std::vector<bool> done(n, false);

  table.to_node[static_cast<std::size_t>(source.value())] =
      Route{kInvalidVif, Ipv4Address{}, 0.0, 0, 0};
  table.predecessor[static_cast<std::size_t>(source.value())] = source;
  pq.push(QueueEntry{0.0, 0, source.value()});

  while (!pq.empty()) {
    const QueueEntry top = pq.top();
    pq.pop();
    const auto u_idx = static_cast<std::size_t>(top.node);
    if (done[u_idx]) continue;
    done[u_idx] = true;

    const NodeId u(top.node);
    const netsim::NodeRecord& u_rec = sim_->node(u);
    // Hosts never transit traffic; only the source itself or routers expand.
    if (u != source && !u_rec.is_router) continue;
    if (!u_rec.up) continue;

    const Route& u_route = table.to_node[u_idx];

    for (const netsim::Interface& iface : u_rec.interfaces) {
      if (!iface.up) continue;
      const netsim::SubnetRecord& s = sim_->subnet(iface.subnet);
      if (!s.up) continue;
      for (const auto& [v, v_vif] : s.attachments) {
        if (v == u) continue;
        const netsim::Interface& in = sim_->interface(v, v_vif);
        if (!in.up || !sim_->node(v).up) continue;

        const double cand_dist = u_route.cost + iface.cost;
        Route cand;
        cand.cost = cand_dist;
        cand.hop_count = u_route.hop_count + 1;
        cand.delay = u_route.delay + s.delay;
        if (u == source) {
          cand.vif = iface.vif;
          cand.next_hop = in.address;
        } else {
          cand.vif = u_route.vif;
          cand.next_hop = u_route.next_hop;
        }

        const auto v_idx = static_cast<std::size_t>(v.value());
        Route& cur = table.to_node[v_idx];
        const bool better =
            cand_dist + kEps < cur.cost ||
            (ApproxEqual(cand_dist, cur.cost) &&
             cand.next_hop.bits() < cur.next_hop.bits());
        if (!done[v_idx] && better) {
          cur = cand;
          table.predecessor[v_idx] = u;
          pq.push(QueueEntry{cand_dist, cand.next_hop.bits(), v.value()});
        }
      }
    }
  }

  // Best route per destination subnet: any live attachment point, closest
  // first, lowest first-hop address on ties.
  for (std::size_t si = 0; si < sim_->subnet_count(); ++si) {
    const netsim::SubnetRecord& s =
        sim_->subnet(SubnetId(static_cast<std::int32_t>(si)));
    if (!s.up) continue;
    Route& best = table.to_subnet[si];
    for (const auto& [z, z_vif] : s.attachments) {
      const netsim::Interface& zi = sim_->interface(z, z_vif);
      if (!zi.up || !sim_->node(z).up) continue;
      if (z == source) {
        // Directly attached: cost 0, deliver straight onto the subnet.
        best = Route{z_vif, Ipv4Address{}, 0.0, 0, s.delay};
        break;
      }
      // Only routers forward from the subnet entry point onward.
      if (!sim_->node(z).is_router) continue;
      const Route& rz = table.to_node[static_cast<std::size_t>(z.value())];
      if (rz.cost == kInfinity) continue;
      const bool better = rz.cost + kEps < best.cost ||
                          (ApproxEqual(rz.cost, best.cost) &&
                           rz.next_hop.bits() < best.next_hop.bits());
      if (better) best = rz;
    }
  }
}

std::optional<SubnetId> RouteManager::ResolveSubnet(Ipv4Address dest) const {
  std::optional<SubnetId> best;
  std::uint32_t best_mask = 0;
  for (std::size_t si = 0; si < sim_->subnet_count(); ++si) {
    const SubnetId id(static_cast<std::int32_t>(si));
    const netsim::SubnetRecord& s = sim_->subnet(id);
    if (s.address.Contains(dest) &&
        (!best || s.address.mask() > best_mask)) {
      best = id;
      best_mask = s.address.mask();
    }
  }
  return best;
}

std::optional<Route> RouteManager::Lookup(NodeId from, Ipv4Address dest) {
  EnsureFresh();
  const auto subnet = ResolveSubnet(dest);
  if (!subnet) return std::nullopt;

  if (const auto it = overrides_.find({from, *subnet}); it != overrides_.end()) {
    return it->second;
  }

  const NodeRoutes& table = tables_.at(static_cast<std::size_t>(from.value()));
  Route route = table.to_subnet.at(static_cast<std::size_t>(subnet->value()));
  if (route.cost == kInfinity) return std::nullopt;
  if (route.next_hop.IsUnspecified()) {
    // Directly attached: the link-level next hop is the destination itself.
    route.next_hop = dest;
  }
  return route;
}

bool RouteManager::IsDirectlyAttached(NodeId node, Ipv4Address addr) {
  for (const netsim::Interface& iface : sim_->node(node).interfaces) {
    if (!iface.up) continue;
    const netsim::SubnetRecord& s = sim_->subnet(iface.subnet);
    if (s.up && s.address.Contains(addr)) return true;
  }
  return false;
}

void RouteManager::SetStaticNextHop(NodeId node, SubnetId dest_subnet,
                                    VifIndex vif, Ipv4Address next_hop) {
  Route route;
  route.vif = vif;
  route.next_hop = next_hop;
  route.cost = 1.0;
  route.hop_count = 1;
  overrides_[{node, dest_subnet}] = route;
}

double RouteManager::Distance(NodeId from, NodeId to) {
  EnsureFresh();
  return tables_.at(static_cast<std::size_t>(from.value()))
      .to_node.at(static_cast<std::size_t>(to.value()))
      .cost;
}

SimDuration RouteManager::PathDelay(NodeId from, NodeId to) {
  EnsureFresh();
  return tables_.at(static_cast<std::size_t>(from.value()))
      .to_node.at(static_cast<std::size_t>(to.value()))
      .delay;
}

std::vector<NodeId> RouteManager::Path(NodeId from, NodeId to) {
  EnsureFresh();
  const NodeRoutes& table = tables_.at(static_cast<std::size_t>(from.value()));
  if (table.to_node.at(static_cast<std::size_t>(to.value())).cost ==
      kInfinity) {
    return {};
  }
  std::vector<NodeId> reversed;
  NodeId cur = to;
  while (cur != from) {
    reversed.push_back(cur);
    cur = table.predecessor.at(static_cast<std::size_t>(cur.value()));
    assert(cur.IsValid());
  }
  reversed.push_back(from);
  std::reverse(reversed.begin(), reversed.end());
  return reversed;
}

}  // namespace cbt::routing
