// Unicast routing substrate.
//
// CBT deliberately builds on whatever unicast routing exists ("the join is
// sent to the next-hop on the path to the target core"). We model an
// idealized link-state protocol: every router computes Dijkstra shortest
// paths over the live topology, and tables refresh automatically when a
// link/node goes up or down (the simulator bumps a topology epoch).
//
// Two behaviours matter to CBT and are modelled explicitly:
//  * deterministic tie-breaking (lowest next-hop address) — the spec's
//    Figure-1 narrative depends on R2 beating R5;
//  * static next-hop overrides, used by tests to create the transient
//    routing loop of Figure 5 and transient asymmetry.
//
// Recompute model (see docs/PROTOCOL.md "Unicast routing & invalidation
// model"): tables are *lazy* — a topology change marks per-source tables
// stale via the simulator's scoped change journal, and a source's
// Dijkstra only runs when that source is actually queried. A table whose
// shortest-path tree provably avoids every changed subnet is kept warm
// (only its route *to* the changed subnet is patched in place); anything
// the conservative check cannot rule out is recomputed. The result is
// bit-for-bit identical to eager full recomputation — proven by the
// routing differential suite — while a flap touching one region no
// longer recomputes every router's table.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include <type_traits>

#include "common/types.h"
#include "netsim/simulator.h"
#include "obs/fields.h"

namespace cbt::routing {

/// A resolved next hop for some destination.
struct Route {
  VifIndex vif = kInvalidVif;
  /// Link-level next hop; equals the final destination when direct.
  Ipv4Address next_hop;
  double cost = 0.0;
  int hop_count = 0;        // router-to-router hops (0 = directly attached)
  SimDuration delay = 0;    // summed subnet delays along the chosen path
};

class RouteManager {
 public:
  /// Recompute strategy. kEager reproduces the historical behaviour —
  /// every epoch bump recomputes every table at the next query — and is
  /// kept test-only (mirrors EventQueue::Engine::kLegacyHeap) so the
  /// differential suite can pin old-vs-new behaviour per seed.
  enum class Mode { kLazy, kEager };

  /// Destination-prefix resolution strategy; kLinearScan is the
  /// historical per-call scan, kept for benchmarks and differential
  /// tests of the LPM index.
  enum class LpmMode { kIndexed, kLinearScan };

  /// Work counters, used by bench_routing and the invalidation tests.
  struct Stats {
    std::uint64_t tables_computed = 0;   // per-source Dijkstra runs
    std::uint64_t tables_dirtied = 0;    // tables invalidated by changes
    std::uint64_t tables_kept_warm = 0;  // verified-unaffected, patched
    std::uint64_t full_invalidations = 0;
    std::uint64_t lookups = 0;
    std::uint64_t lpm_cache_hits = 0;
    std::uint64_t lpm_index_rebuilds = 0;
  };

  explicit RouteManager(netsim::Simulator& sim, Mode mode = Mode::kLazy)
      : sim_(&sim), mode_(mode) {}

  void set_mode(Mode mode) {
    mode_ = mode;
    Invalidate();
  }
  Mode mode() const { return mode_; }

  void set_lpm_mode(LpmMode mode) { lpm_mode_ = mode; }
  LpmMode lpm_mode() const { return lpm_mode_; }

  /// Next hop from router `from` toward address `dest` (host or router).
  /// nullopt when dest is unreachable or not covered by any known subnet.
  std::optional<Route> Lookup(NodeId from, Ipv4Address dest);

  /// True when `addr` is on a subnet directly attached to `node` (and the
  /// attachment is up).
  bool IsDirectlyAttached(NodeId node, Ipv4Address addr);

  /// Forces (node, destination-subnet) to resolve to the given next hop;
  /// survives recomputes until cleared. Used to build the Figure-5 loop.
  /// An override whose vif or subnet is down is skipped at lookup time
  /// (the computed route wins) and revives when the path comes back.
  void SetStaticNextHop(NodeId node, SubnetId dest_subnet, VifIndex vif,
                        Ipv4Address next_hop);
  void ClearStaticNextHops() { overrides_.clear(); }

  /// Shortest-path router cost between two nodes (for analysis/oracles);
  /// infinity if disconnected.
  double Distance(NodeId from, NodeId to);

  /// Summed link delay along the chosen shortest path between two nodes.
  SimDuration PathDelay(NodeId from, NodeId to);

  /// Node sequence (inclusive of both endpoints) of the chosen shortest
  /// path; empty when disconnected.
  std::vector<NodeId> Path(NodeId from, NodeId to);

  /// Longest-prefix match of `dest` against the known subnets (up or
  /// down; liveness is the routing table's concern, not addressing's).
  std::optional<SubnetId> ResolveSubnet(Ipv4Address dest);

  /// Monotone counter bumped every time `source`'s table is recomputed;
  /// stable while the table is verified-unaffected. Consumers caching
  /// path-derived state (e.g. the MOSPF per-(S,G) tree cache) key on
  /// this instead of the raw topology epoch, inheriting the scoped
  /// invalidation for free. Freshens the table as a side effect.
  std::uint64_t TableVersion(NodeId source);

  /// Forces recomputation on next query regardless of topology epoch.
  void Invalidate();

  const Stats& stats() const { return stats_; }
  Stats& mutable_stats() { return stats_; }
  void ResetStats() { obs::ResetStats(stats_); }

  static constexpr double kInfinity = std::numeric_limits<double>::infinity();

 private:
  struct NodeRoutes {
    // Indexed by subnet id: best route from this node to that subnet.
    std::vector<Route> to_subnet;
    // Indexed by node id: best route/cost to that node's primary address.
    std::vector<Route> to_node;
    std::vector<NodeId> predecessor;  // for Path()
    // Bitset over subnet ids: subnets traversed by some chosen shortest
    // path out of this source. A change on an unused subnet cannot alter
    // to_node/predecessor (see ApplyScopedChanges).
    std::vector<std::uint64_t> used_subnets;
    std::uint64_t version = 0;
    bool valid = false;

    bool Uses(SubnetId s) const {
      const auto i = static_cast<std::size_t>(s.value());
      return (i >> 6) < used_subnets.size() &&
             (used_subnets[i >> 6] >> (i & 63)) & 1u;
    }
  };

  /// Longest-prefix-match index: one bucket per distinct mask, longest
  /// (numerically largest contiguous) mask first, each sorted by network
  /// for binary search. Plus a direct-mapped address cache in front.
  struct LpmIndex {
    struct Bucket {
      std::uint32_t mask;
      // (network bits, subnet id), sorted; duplicates keep the lowest id
      // to match the historical first-wins linear scan.
      std::vector<std::pair<std::uint32_t, std::int32_t>> prefixes;
    };
    std::vector<Bucket> buckets;
    std::size_t indexed_subnets = 0;
    std::uint64_t version = 0;  // bumped per rebuild; guards the cache
  };
  struct LpmCacheSlot {
    std::uint32_t addr = 0;
    std::int32_t subnet = -1;  // -1 = cached miss
    std::uint64_t version = 0;  // 0 = empty
  };

  /// Brings routing state in sync with the simulator's topology epoch:
  /// processes the scoped change journal (lazy mode) or invalidates
  /// everything (eager mode / journal overflow / entity-count change).
  void SyncTopology();

  /// Ensures `source`'s table is valid, running its Dijkstra if needed.
  NodeRoutes& Freshen(NodeId source);

  void ComputeFrom(NodeId source);

  /// Applies one batch of scoped changes to every valid table: tables
  /// that provably cannot be affected are patched in place; the rest are
  /// invalidated.
  void ApplyScopedChanges(std::span<const netsim::TopologyChange> changes);

  /// Conservative test: could bringing subnet `s` (back) up improve or
  /// re-tie any route in `table`? False only when provably not.
  bool UpMayImprove(const NodeRoutes& table, NodeId source, SubnetId s) const;

  /// Recomputes table.to_subnet[s] from the (unchanged) to_node routes —
  /// the per-subnet tail of ComputeFrom, replayed for one subnet.
  void RecomputeSubnetTail(NodeRoutes& table, NodeId source, SubnetId s);

  void InvalidateAllTables();

  std::optional<SubnetId> ResolveSubnetLinear(Ipv4Address dest) const;
  void RebuildLpmIndex();

  /// True when a static override's forwarding path is actually usable.
  bool OverrideLive(NodeId node, SubnetId dest_subnet,
                    const Route& route) const;

  static constexpr std::size_t kLpmCacheSize = 256;  // direct-mapped

  netsim::Simulator* sim_;
  Mode mode_;
  LpmMode lpm_mode_ = LpmMode::kIndexed;
  std::uint64_t synced_epoch_ = 0;
  std::size_t synced_subnet_count_ = 0;
  bool ever_synced_ = false;
  /// Manager-wide monotone source of table versions; never reused, so a
  /// consumer's cached version can never alias across invalidations.
  std::uint64_t version_counter_ = 0;
  std::vector<NodeRoutes> tables_;  // indexed by node id
  std::map<std::pair<NodeId, SubnetId>, Route> overrides_;
  LpmIndex lpm_;
  std::array<LpmCacheSlot, kLpmCacheSize> lpm_cache_{};
  Stats stats_;
};

/// obs reflection over the work counters (see obs/fields.h); binds them
/// under "cbt.routing.*" and powers the generic ResetStats.
template <typename Stats, typename Fn>
  requires std::is_same_v<std::remove_const_t<Stats>, RouteManager::Stats>
void ForEachStatsField(Stats& s, Fn&& fn) {
  using Tag = obs::FieldTag;
  fn("tables_computed", s.tables_computed, Tag::kNone);
  fn("tables_dirtied", s.tables_dirtied, Tag::kNone);
  fn("tables_kept_warm", s.tables_kept_warm, Tag::kNone);
  fn("full_invalidations", s.full_invalidations, Tag::kNone);
  fn("lookups", s.lookups, Tag::kNone);
  fn("lpm_cache_hits", s.lpm_cache_hits, Tag::kNone);
  fn("lpm_index_rebuilds", s.lpm_index_rebuilds, Tag::kNone);
}

}  // namespace cbt::routing
