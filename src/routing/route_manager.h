// Unicast routing substrate.
//
// CBT deliberately builds on whatever unicast routing exists ("the join is
// sent to the next-hop on the path to the target core"). We model an
// idealized link-state protocol: every router computes Dijkstra shortest
// paths over the live topology, and tables refresh automatically when a
// link/node goes up or down (the simulator bumps a topology epoch).
//
// Two behaviours matter to CBT and are modelled explicitly:
//  * deterministic tie-breaking (lowest next-hop address) — the spec's
//    Figure-1 narrative depends on R2 beating R5;
//  * static next-hop overrides, used by tests to create the transient
//    routing loop of Figure 5 and transient asymmetry.
#pragma once

#include <limits>
#include <map>
#include <optional>
#include <vector>

#include "common/types.h"
#include "netsim/simulator.h"

namespace cbt::routing {

/// A resolved next hop for some destination.
struct Route {
  VifIndex vif = kInvalidVif;
  /// Link-level next hop; equals the final destination when direct.
  Ipv4Address next_hop;
  double cost = 0.0;
  int hop_count = 0;        // router-to-router hops (0 = directly attached)
  SimDuration delay = 0;    // summed subnet delays along the chosen path
};

class RouteManager {
 public:
  explicit RouteManager(netsim::Simulator& sim) : sim_(&sim) {}

  /// Next hop from router `from` toward address `dest` (host or router).
  /// nullopt when dest is unreachable or not covered by any known subnet.
  std::optional<Route> Lookup(NodeId from, Ipv4Address dest);

  /// True when `addr` is on a subnet directly attached to `node` (and the
  /// attachment is up).
  bool IsDirectlyAttached(NodeId node, Ipv4Address addr);

  /// Forces (node, destination-subnet) to resolve to the given next hop;
  /// survives recomputes until cleared. Used to build the Figure-5 loop.
  void SetStaticNextHop(NodeId node, SubnetId dest_subnet, VifIndex vif,
                        Ipv4Address next_hop);
  void ClearStaticNextHops() { overrides_.clear(); }

  /// Shortest-path router cost between two nodes (for analysis/oracles);
  /// infinity if disconnected.
  double Distance(NodeId from, NodeId to);

  /// Summed link delay along the chosen shortest path between two nodes.
  SimDuration PathDelay(NodeId from, NodeId to);

  /// Node sequence (inclusive of both endpoints) of the chosen shortest
  /// path; empty when disconnected.
  std::vector<NodeId> Path(NodeId from, NodeId to);

  /// Forces recomputation on next query regardless of topology epoch.
  void Invalidate() { computed_epoch_ = kNeverComputed; }

  static constexpr double kInfinity = std::numeric_limits<double>::infinity();

 private:
  struct NodeRoutes {
    // Indexed by subnet id: best route from this node to that subnet.
    std::vector<Route> to_subnet;
    // Indexed by node id: best route/cost to that node's primary address.
    std::vector<Route> to_node;
    std::vector<NodeId> predecessor;  // for Path()
  };

  void EnsureFresh();
  void ComputeFrom(NodeId source);
  std::optional<SubnetId> ResolveSubnet(Ipv4Address dest) const;

  static constexpr std::uint64_t kNeverComputed =
      std::numeric_limits<std::uint64_t>::max();

  netsim::Simulator* sim_;
  std::uint64_t computed_epoch_ = kNeverComputed;
  std::vector<NodeRoutes> tables_;  // indexed by node id
  std::map<std::pair<NodeId, SubnetId>, Route> overrides_;
};

}  // namespace cbt::routing
