
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cbt/churn_test.cc" "tests/CMakeFiles/test_cbt.dir/cbt/churn_test.cc.o" "gcc" "tests/CMakeFiles/test_cbt.dir/cbt/churn_test.cc.o.d"
  "/root/repo/tests/cbt/core_ping_test.cc" "tests/CMakeFiles/test_cbt.dir/cbt/core_ping_test.cc.o" "gcc" "tests/CMakeFiles/test_cbt.dir/cbt/core_ping_test.cc.o.d"
  "/root/repo/tests/cbt/directory_and_selection_test.cc" "tests/CMakeFiles/test_cbt.dir/cbt/directory_and_selection_test.cc.o" "gcc" "tests/CMakeFiles/test_cbt.dir/cbt/directory_and_selection_test.cc.o.d"
  "/root/repo/tests/cbt/echo_test.cc" "tests/CMakeFiles/test_cbt.dir/cbt/echo_test.cc.o" "gcc" "tests/CMakeFiles/test_cbt.dir/cbt/echo_test.cc.o.d"
  "/root/repo/tests/cbt/edge_cases_test.cc" "tests/CMakeFiles/test_cbt.dir/cbt/edge_cases_test.cc.o" "gcc" "tests/CMakeFiles/test_cbt.dir/cbt/edge_cases_test.cc.o.d"
  "/root/repo/tests/cbt/fib_test.cc" "tests/CMakeFiles/test_cbt.dir/cbt/fib_test.cc.o" "gcc" "tests/CMakeFiles/test_cbt.dir/cbt/fib_test.cc.o.d"
  "/root/repo/tests/cbt/forwarding_test.cc" "tests/CMakeFiles/test_cbt.dir/cbt/forwarding_test.cc.o" "gcc" "tests/CMakeFiles/test_cbt.dir/cbt/forwarding_test.cc.o.d"
  "/root/repo/tests/cbt/host_test.cc" "tests/CMakeFiles/test_cbt.dir/cbt/host_test.cc.o" "gcc" "tests/CMakeFiles/test_cbt.dir/cbt/host_test.cc.o.d"
  "/root/repo/tests/cbt/join_test.cc" "tests/CMakeFiles/test_cbt.dir/cbt/join_test.cc.o" "gcc" "tests/CMakeFiles/test_cbt.dir/cbt/join_test.cc.o.d"
  "/root/repo/tests/cbt/loop_test.cc" "tests/CMakeFiles/test_cbt.dir/cbt/loop_test.cc.o" "gcc" "tests/CMakeFiles/test_cbt.dir/cbt/loop_test.cc.o.d"
  "/root/repo/tests/cbt/property_test.cc" "tests/CMakeFiles/test_cbt.dir/cbt/property_test.cc.o" "gcc" "tests/CMakeFiles/test_cbt.dir/cbt/property_test.cc.o.d"
  "/root/repo/tests/cbt/resilience_test.cc" "tests/CMakeFiles/test_cbt.dir/cbt/resilience_test.cc.o" "gcc" "tests/CMakeFiles/test_cbt.dir/cbt/resilience_test.cc.o.d"
  "/root/repo/tests/cbt/scenario_test.cc" "tests/CMakeFiles/test_cbt.dir/cbt/scenario_test.cc.o" "gcc" "tests/CMakeFiles/test_cbt.dir/cbt/scenario_test.cc.o.d"
  "/root/repo/tests/cbt/teardown_test.cc" "tests/CMakeFiles/test_cbt.dir/cbt/teardown_test.cc.o" "gcc" "tests/CMakeFiles/test_cbt.dir/cbt/teardown_test.cc.o.d"
  "/root/repo/tests/cbt/topology_sweep_test.cc" "tests/CMakeFiles/test_cbt.dir/cbt/topology_sweep_test.cc.o" "gcc" "tests/CMakeFiles/test_cbt.dir/cbt/topology_sweep_test.cc.o.d"
  "/root/repo/tests/cbt/tunnel_test.cc" "tests/CMakeFiles/test_cbt.dir/cbt/tunnel_test.cc.o" "gcc" "tests/CMakeFiles/test_cbt.dir/cbt/tunnel_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cbt/CMakeFiles/cbt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/igmp/CMakeFiles/cbt_igmp.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/cbt_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/cbt_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/cbt_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cbt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
