file(REMOVE_RECURSE
  "CMakeFiles/test_netsim.dir/netsim/event_queue_test.cc.o"
  "CMakeFiles/test_netsim.dir/netsim/event_queue_test.cc.o.d"
  "CMakeFiles/test_netsim.dir/netsim/simulator_test.cc.o"
  "CMakeFiles/test_netsim.dir/netsim/simulator_test.cc.o.d"
  "CMakeFiles/test_netsim.dir/netsim/topologies_test.cc.o"
  "CMakeFiles/test_netsim.dir/netsim/topologies_test.cc.o.d"
  "test_netsim"
  "test_netsim.pdb"
  "test_netsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
