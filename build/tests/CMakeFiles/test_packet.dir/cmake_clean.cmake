file(REMOVE_RECURSE
  "CMakeFiles/test_packet.dir/packet/cbt_control_test.cc.o"
  "CMakeFiles/test_packet.dir/packet/cbt_control_test.cc.o.d"
  "CMakeFiles/test_packet.dir/packet/cbt_header_test.cc.o"
  "CMakeFiles/test_packet.dir/packet/cbt_header_test.cc.o.d"
  "CMakeFiles/test_packet.dir/packet/codec_property_test.cc.o"
  "CMakeFiles/test_packet.dir/packet/codec_property_test.cc.o.d"
  "CMakeFiles/test_packet.dir/packet/encap_test.cc.o"
  "CMakeFiles/test_packet.dir/packet/encap_test.cc.o.d"
  "CMakeFiles/test_packet.dir/packet/igmp_test.cc.o"
  "CMakeFiles/test_packet.dir/packet/igmp_test.cc.o.d"
  "CMakeFiles/test_packet.dir/packet/ipv4_test.cc.o"
  "CMakeFiles/test_packet.dir/packet/ipv4_test.cc.o.d"
  "test_packet"
  "test_packet.pdb"
  "test_packet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_packet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
