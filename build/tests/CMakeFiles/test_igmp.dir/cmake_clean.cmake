file(REMOVE_RECURSE
  "CMakeFiles/test_igmp.dir/igmp/router_igmp_test.cc.o"
  "CMakeFiles/test_igmp.dir/igmp/router_igmp_test.cc.o.d"
  "test_igmp"
  "test_igmp.pdb"
  "test_igmp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_igmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
