# Empty dependencies file for test_igmp.
# This may be replaced when dependencies are built.
