# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_netsim[1]_include.cmake")
include("/root/repo/build/tests/test_routing[1]_include.cmake")
include("/root/repo/build/tests/test_packet[1]_include.cmake")
include("/root/repo/build/tests/test_igmp[1]_include.cmake")
include("/root/repo/build/tests/test_cbt[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
