file(REMOVE_RECURSE
  "CMakeFiles/bench_state_scaling.dir/state_scaling.cc.o"
  "CMakeFiles/bench_state_scaling.dir/state_scaling.cc.o.d"
  "bench_state_scaling"
  "bench_state_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_state_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
