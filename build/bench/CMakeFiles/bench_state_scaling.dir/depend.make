# Empty dependencies file for bench_state_scaling.
# This may be replaced when dependencies are built.
