file(REMOVE_RECURSE
  "CMakeFiles/bench_delay_ratio.dir/delay_ratio.cc.o"
  "CMakeFiles/bench_delay_ratio.dir/delay_ratio.cc.o.d"
  "bench_delay_ratio"
  "bench_delay_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_delay_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
