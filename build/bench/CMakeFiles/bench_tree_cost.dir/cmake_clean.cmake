file(REMOVE_RECURSE
  "CMakeFiles/bench_tree_cost.dir/tree_cost.cc.o"
  "CMakeFiles/bench_tree_cost.dir/tree_cost.cc.o.d"
  "bench_tree_cost"
  "bench_tree_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tree_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
