# Empty dependencies file for bench_tree_cost.
# This may be replaced when dependencies are built.
