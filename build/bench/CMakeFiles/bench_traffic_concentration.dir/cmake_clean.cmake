file(REMOVE_RECURSE
  "CMakeFiles/bench_traffic_concentration.dir/traffic_concentration.cc.o"
  "CMakeFiles/bench_traffic_concentration.dir/traffic_concentration.cc.o.d"
  "bench_traffic_concentration"
  "bench_traffic_concentration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_traffic_concentration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
