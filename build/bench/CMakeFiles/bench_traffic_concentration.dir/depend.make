# Empty dependencies file for bench_traffic_concentration.
# This may be replaced when dependencies are built.
