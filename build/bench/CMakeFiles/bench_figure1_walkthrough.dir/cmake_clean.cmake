file(REMOVE_RECURSE
  "CMakeFiles/bench_figure1_walkthrough.dir/figure1_walkthrough.cc.o"
  "CMakeFiles/bench_figure1_walkthrough.dir/figure1_walkthrough.cc.o.d"
  "bench_figure1_walkthrough"
  "bench_figure1_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure1_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
