
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/packet/cbt_control.cc" "src/packet/CMakeFiles/cbt_packet.dir/cbt_control.cc.o" "gcc" "src/packet/CMakeFiles/cbt_packet.dir/cbt_control.cc.o.d"
  "/root/repo/src/packet/cbt_header.cc" "src/packet/CMakeFiles/cbt_packet.dir/cbt_header.cc.o" "gcc" "src/packet/CMakeFiles/cbt_packet.dir/cbt_header.cc.o.d"
  "/root/repo/src/packet/encap.cc" "src/packet/CMakeFiles/cbt_packet.dir/encap.cc.o" "gcc" "src/packet/CMakeFiles/cbt_packet.dir/encap.cc.o.d"
  "/root/repo/src/packet/igmp.cc" "src/packet/CMakeFiles/cbt_packet.dir/igmp.cc.o" "gcc" "src/packet/CMakeFiles/cbt_packet.dir/igmp.cc.o.d"
  "/root/repo/src/packet/ipv4.cc" "src/packet/CMakeFiles/cbt_packet.dir/ipv4.cc.o" "gcc" "src/packet/CMakeFiles/cbt_packet.dir/ipv4.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cbt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
