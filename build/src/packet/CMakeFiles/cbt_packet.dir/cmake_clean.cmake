file(REMOVE_RECURSE
  "CMakeFiles/cbt_packet.dir/cbt_control.cc.o"
  "CMakeFiles/cbt_packet.dir/cbt_control.cc.o.d"
  "CMakeFiles/cbt_packet.dir/cbt_header.cc.o"
  "CMakeFiles/cbt_packet.dir/cbt_header.cc.o.d"
  "CMakeFiles/cbt_packet.dir/encap.cc.o"
  "CMakeFiles/cbt_packet.dir/encap.cc.o.d"
  "CMakeFiles/cbt_packet.dir/igmp.cc.o"
  "CMakeFiles/cbt_packet.dir/igmp.cc.o.d"
  "CMakeFiles/cbt_packet.dir/ipv4.cc.o"
  "CMakeFiles/cbt_packet.dir/ipv4.cc.o.d"
  "libcbt_packet.a"
  "libcbt_packet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbt_packet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
