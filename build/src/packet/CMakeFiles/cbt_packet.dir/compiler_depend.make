# Empty compiler generated dependencies file for cbt_packet.
# This may be replaced when dependencies are built.
