file(REMOVE_RECURSE
  "libcbt_packet.a"
)
