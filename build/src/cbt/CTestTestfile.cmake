# CMake generated Testfile for 
# Source directory: /root/repo/src/cbt
# Build directory: /root/repo/build/src/cbt
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
