file(REMOVE_RECURSE
  "libcbt_core.a"
)
