# Empty compiler generated dependencies file for cbt_core.
# This may be replaced when dependencies are built.
