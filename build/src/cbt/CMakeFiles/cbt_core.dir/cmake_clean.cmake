file(REMOVE_RECURSE
  "CMakeFiles/cbt_core.dir/core_selection.cc.o"
  "CMakeFiles/cbt_core.dir/core_selection.cc.o.d"
  "CMakeFiles/cbt_core.dir/domain.cc.o"
  "CMakeFiles/cbt_core.dir/domain.cc.o.d"
  "CMakeFiles/cbt_core.dir/fib.cc.o"
  "CMakeFiles/cbt_core.dir/fib.cc.o.d"
  "CMakeFiles/cbt_core.dir/group_directory.cc.o"
  "CMakeFiles/cbt_core.dir/group_directory.cc.o.d"
  "CMakeFiles/cbt_core.dir/host.cc.o"
  "CMakeFiles/cbt_core.dir/host.cc.o.d"
  "CMakeFiles/cbt_core.dir/router.cc.o"
  "CMakeFiles/cbt_core.dir/router.cc.o.d"
  "CMakeFiles/cbt_core.dir/scenario.cc.o"
  "CMakeFiles/cbt_core.dir/scenario.cc.o.d"
  "CMakeFiles/cbt_core.dir/tree_printer.cc.o"
  "CMakeFiles/cbt_core.dir/tree_printer.cc.o.d"
  "CMakeFiles/cbt_core.dir/tunnel_config.cc.o"
  "CMakeFiles/cbt_core.dir/tunnel_config.cc.o.d"
  "libcbt_core.a"
  "libcbt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
