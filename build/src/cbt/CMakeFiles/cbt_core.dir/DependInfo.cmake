
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cbt/core_selection.cc" "src/cbt/CMakeFiles/cbt_core.dir/core_selection.cc.o" "gcc" "src/cbt/CMakeFiles/cbt_core.dir/core_selection.cc.o.d"
  "/root/repo/src/cbt/domain.cc" "src/cbt/CMakeFiles/cbt_core.dir/domain.cc.o" "gcc" "src/cbt/CMakeFiles/cbt_core.dir/domain.cc.o.d"
  "/root/repo/src/cbt/fib.cc" "src/cbt/CMakeFiles/cbt_core.dir/fib.cc.o" "gcc" "src/cbt/CMakeFiles/cbt_core.dir/fib.cc.o.d"
  "/root/repo/src/cbt/group_directory.cc" "src/cbt/CMakeFiles/cbt_core.dir/group_directory.cc.o" "gcc" "src/cbt/CMakeFiles/cbt_core.dir/group_directory.cc.o.d"
  "/root/repo/src/cbt/host.cc" "src/cbt/CMakeFiles/cbt_core.dir/host.cc.o" "gcc" "src/cbt/CMakeFiles/cbt_core.dir/host.cc.o.d"
  "/root/repo/src/cbt/router.cc" "src/cbt/CMakeFiles/cbt_core.dir/router.cc.o" "gcc" "src/cbt/CMakeFiles/cbt_core.dir/router.cc.o.d"
  "/root/repo/src/cbt/scenario.cc" "src/cbt/CMakeFiles/cbt_core.dir/scenario.cc.o" "gcc" "src/cbt/CMakeFiles/cbt_core.dir/scenario.cc.o.d"
  "/root/repo/src/cbt/tree_printer.cc" "src/cbt/CMakeFiles/cbt_core.dir/tree_printer.cc.o" "gcc" "src/cbt/CMakeFiles/cbt_core.dir/tree_printer.cc.o.d"
  "/root/repo/src/cbt/tunnel_config.cc" "src/cbt/CMakeFiles/cbt_core.dir/tunnel_config.cc.o" "gcc" "src/cbt/CMakeFiles/cbt_core.dir/tunnel_config.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cbt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/cbt_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/cbt_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/cbt_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/igmp/CMakeFiles/cbt_igmp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
