# Empty dependencies file for cbt_common.
# This may be replaced when dependencies are built.
