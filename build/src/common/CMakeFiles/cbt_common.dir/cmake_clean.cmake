file(REMOVE_RECURSE
  "CMakeFiles/cbt_common.dir/checksum.cc.o"
  "CMakeFiles/cbt_common.dir/checksum.cc.o.d"
  "CMakeFiles/cbt_common.dir/logging.cc.o"
  "CMakeFiles/cbt_common.dir/logging.cc.o.d"
  "CMakeFiles/cbt_common.dir/random.cc.o"
  "CMakeFiles/cbt_common.dir/random.cc.o.d"
  "CMakeFiles/cbt_common.dir/types.cc.o"
  "CMakeFiles/cbt_common.dir/types.cc.o.d"
  "libcbt_common.a"
  "libcbt_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbt_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
