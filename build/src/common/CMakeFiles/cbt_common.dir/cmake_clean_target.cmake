file(REMOVE_RECURSE
  "libcbt_common.a"
)
