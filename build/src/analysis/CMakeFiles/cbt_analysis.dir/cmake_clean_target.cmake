file(REMOVE_RECURSE
  "libcbt_analysis.a"
)
