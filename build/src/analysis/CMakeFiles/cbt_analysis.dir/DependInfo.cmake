
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/table.cc" "src/analysis/CMakeFiles/cbt_analysis.dir/table.cc.o" "gcc" "src/analysis/CMakeFiles/cbt_analysis.dir/table.cc.o.d"
  "/root/repo/src/analysis/tree_metrics.cc" "src/analysis/CMakeFiles/cbt_analysis.dir/tree_metrics.cc.o" "gcc" "src/analysis/CMakeFiles/cbt_analysis.dir/tree_metrics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cbt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/cbt_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/cbt_routing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
