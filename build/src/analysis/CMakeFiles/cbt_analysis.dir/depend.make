# Empty dependencies file for cbt_analysis.
# This may be replaced when dependencies are built.
