file(REMOVE_RECURSE
  "CMakeFiles/cbt_analysis.dir/table.cc.o"
  "CMakeFiles/cbt_analysis.dir/table.cc.o.d"
  "CMakeFiles/cbt_analysis.dir/tree_metrics.cc.o"
  "CMakeFiles/cbt_analysis.dir/tree_metrics.cc.o.d"
  "libcbt_analysis.a"
  "libcbt_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbt_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
