# Empty compiler generated dependencies file for cbt_igmp.
# This may be replaced when dependencies are built.
