file(REMOVE_RECURSE
  "libcbt_igmp.a"
)
