
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/igmp/router_igmp.cc" "src/igmp/CMakeFiles/cbt_igmp.dir/router_igmp.cc.o" "gcc" "src/igmp/CMakeFiles/cbt_igmp.dir/router_igmp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cbt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/cbt_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/cbt_packet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
