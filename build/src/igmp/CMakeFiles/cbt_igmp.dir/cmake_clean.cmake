file(REMOVE_RECURSE
  "CMakeFiles/cbt_igmp.dir/router_igmp.cc.o"
  "CMakeFiles/cbt_igmp.dir/router_igmp.cc.o.d"
  "libcbt_igmp.a"
  "libcbt_igmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbt_igmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
