file(REMOVE_RECURSE
  "libcbt_netsim.a"
)
