file(REMOVE_RECURSE
  "CMakeFiles/cbt_netsim.dir/event_queue.cc.o"
  "CMakeFiles/cbt_netsim.dir/event_queue.cc.o.d"
  "CMakeFiles/cbt_netsim.dir/simulator.cc.o"
  "CMakeFiles/cbt_netsim.dir/simulator.cc.o.d"
  "CMakeFiles/cbt_netsim.dir/topologies.cc.o"
  "CMakeFiles/cbt_netsim.dir/topologies.cc.o.d"
  "libcbt_netsim.a"
  "libcbt_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbt_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
