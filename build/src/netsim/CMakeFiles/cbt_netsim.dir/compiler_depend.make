# Empty compiler generated dependencies file for cbt_netsim.
# This may be replaced when dependencies are built.
