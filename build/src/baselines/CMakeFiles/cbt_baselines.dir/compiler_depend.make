# Empty compiler generated dependencies file for cbt_baselines.
# This may be replaced when dependencies are built.
