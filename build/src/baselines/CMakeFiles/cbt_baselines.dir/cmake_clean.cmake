file(REMOVE_RECURSE
  "CMakeFiles/cbt_baselines.dir/dvmrp_domain.cc.o"
  "CMakeFiles/cbt_baselines.dir/dvmrp_domain.cc.o.d"
  "CMakeFiles/cbt_baselines.dir/dvmrp_message.cc.o"
  "CMakeFiles/cbt_baselines.dir/dvmrp_message.cc.o.d"
  "CMakeFiles/cbt_baselines.dir/dvmrp_router.cc.o"
  "CMakeFiles/cbt_baselines.dir/dvmrp_router.cc.o.d"
  "CMakeFiles/cbt_baselines.dir/mospf_domain.cc.o"
  "CMakeFiles/cbt_baselines.dir/mospf_domain.cc.o.d"
  "CMakeFiles/cbt_baselines.dir/mospf_router.cc.o"
  "CMakeFiles/cbt_baselines.dir/mospf_router.cc.o.d"
  "CMakeFiles/cbt_baselines.dir/rp_tree_domain.cc.o"
  "CMakeFiles/cbt_baselines.dir/rp_tree_domain.cc.o.d"
  "CMakeFiles/cbt_baselines.dir/rp_tree_router.cc.o"
  "CMakeFiles/cbt_baselines.dir/rp_tree_router.cc.o.d"
  "libcbt_baselines.a"
  "libcbt_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbt_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
