
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/dvmrp_domain.cc" "src/baselines/CMakeFiles/cbt_baselines.dir/dvmrp_domain.cc.o" "gcc" "src/baselines/CMakeFiles/cbt_baselines.dir/dvmrp_domain.cc.o.d"
  "/root/repo/src/baselines/dvmrp_message.cc" "src/baselines/CMakeFiles/cbt_baselines.dir/dvmrp_message.cc.o" "gcc" "src/baselines/CMakeFiles/cbt_baselines.dir/dvmrp_message.cc.o.d"
  "/root/repo/src/baselines/dvmrp_router.cc" "src/baselines/CMakeFiles/cbt_baselines.dir/dvmrp_router.cc.o" "gcc" "src/baselines/CMakeFiles/cbt_baselines.dir/dvmrp_router.cc.o.d"
  "/root/repo/src/baselines/mospf_domain.cc" "src/baselines/CMakeFiles/cbt_baselines.dir/mospf_domain.cc.o" "gcc" "src/baselines/CMakeFiles/cbt_baselines.dir/mospf_domain.cc.o.d"
  "/root/repo/src/baselines/mospf_router.cc" "src/baselines/CMakeFiles/cbt_baselines.dir/mospf_router.cc.o" "gcc" "src/baselines/CMakeFiles/cbt_baselines.dir/mospf_router.cc.o.d"
  "/root/repo/src/baselines/rp_tree_domain.cc" "src/baselines/CMakeFiles/cbt_baselines.dir/rp_tree_domain.cc.o" "gcc" "src/baselines/CMakeFiles/cbt_baselines.dir/rp_tree_domain.cc.o.d"
  "/root/repo/src/baselines/rp_tree_router.cc" "src/baselines/CMakeFiles/cbt_baselines.dir/rp_tree_router.cc.o" "gcc" "src/baselines/CMakeFiles/cbt_baselines.dir/rp_tree_router.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cbt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/cbt_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/cbt_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/cbt_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/igmp/CMakeFiles/cbt_igmp.dir/DependInfo.cmake"
  "/root/repo/build/src/cbt/CMakeFiles/cbt_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
