file(REMOVE_RECURSE
  "libcbt_baselines.a"
)
