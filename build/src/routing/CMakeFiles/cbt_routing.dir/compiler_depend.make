# Empty compiler generated dependencies file for cbt_routing.
# This may be replaced when dependencies are built.
