file(REMOVE_RECURSE
  "CMakeFiles/cbt_routing.dir/route_manager.cc.o"
  "CMakeFiles/cbt_routing.dir/route_manager.cc.o.d"
  "libcbt_routing.a"
  "libcbt_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbt_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
