file(REMOVE_RECURSE
  "libcbt_routing.a"
)
